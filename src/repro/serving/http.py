"""The async HTTP front door: REST serving with admission control.

Everything below :class:`~repro.serving.service.QueryService` is an
in-process API; this module is what actually takes traffic.  It exposes
all seven query kinds (``delta``, ``nonzero_nn``, ``quantify``,
``quantify_exact``, ``quantify_vpr``, ``top_k``, ``threshold_nn``) over
HTTP, single-point and bulk, and feeds them into the *existing* serving
spine — singles go through :meth:`QueryService.submit` (so concurrent
HTTP clients coalesce into vectorized micro-batches), bulks through
:meth:`QueryService.batch` (so large arrays shard across the executor
backend).  No request handling is forked: validation, caching, and
dispatch are the service's own (:meth:`QueryService.canonicalize`,
``_cache_lookup``, ``_run_batch``), identical to the in-process callers.

Endpoints
---------
``POST /v1/query/<kind>``
    Body ``{"q": [x, y], "params": {...}}`` for one point, or
    ``{"queries": [[x, y], ...], "params": {...}}`` for an ``(m, 2)``
    bulk array.  ``params`` takes the same overrides as the python API
    (``k``, ``tau``, ``epsilon``, ``method``, ``seed``, ``tie_tol``).
``GET /healthz``
    Readiness probe: ``503`` until the backend warm-up queries have run,
    ``200`` after (load balancers gate traffic on it).
``GET /metrics``
    Prometheus text format: per-kind request/shed counters, in-flight and
    pending gauges, and p50/p90/p99 latency summaries straight out of the
    :mod:`repro.serving.stats` reservoirs (HTTP wall time *and* engine
    batch time).
``GET /``
    A JSON index of the endpoints and served kinds.

Admission control
-----------------
The gateway holds a configurable in-flight cap (``max_inflight`` engine
threads actually executing) and a bounded pending queue
(``max_pending`` admitted requests waiting for a slot).  A request
arriving with every slot busy and the queue full is **shed immediately
with 429** (plus ``Retry-After``) — the server degrades by refusing
early rather than by building an unbounded backlog whose every entry
times out.  ``/metrics`` exports the shed count per kind.

Transports
----------
Two adapters share one transport-agnostic core (:class:`QueryGateway`):

* a **pure-stdlib asyncio HTTP/1.1 server** (:func:`handle_connection` /
  :class:`ServerThread` / :func:`serve_forever`) — zero dependencies, the
  tier-1 path;
* a **thin ASGI app** (:func:`create_asgi_app`) with lifespan support,
  mountable under uvicorn/hypercorn/FastAPI-style stacks when one is
  installed (none is required).

``python -m repro serve-http`` boots the stdlib server; ``--smoke`` runs
the self-test used by CI (all seven kinds single + bulk, parity against
the in-process service, a forced 429, and a /metrics scrape).
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.logging import RequestLog
from ..obs.metrics import engine_counters, kernel_counters
from ..spatial.kernels import kernel_status
from ..obs.trace import (NULL_SPAN, call_with_span, current_span,
                         format_traceparent, to_chrome, to_jsonl, use_span)
from ..quantification.threshold import ThresholdResult
from .executors import BACKENDS
from .faults import Deadline, DeadlineExceeded
from .shard import SHARD_METHODS
from .stats import ServiceStats

_LOG = logging.getLogger("repro.serving.http")

__all__ = [
    "HttpConfig",
    "QueryGateway",
    "ServerThread",
    "create_asgi_app",
    "decode_result",
    "encode_result",
    "handle_connection",
    "render_prometheus",
    "run_chaos_smoke",
    "run_plane_smoke",
    "run_smoke",
    "serve_forever",
]

_JSON = "application/json"
_PROM = "text/plain; version=0.0.4; charset=utf-8"

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 499: "Client Closed Request",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}

#: Request header carrying a whole-request deadline in milliseconds
#: (the JSON body's ``timeout_ms`` field takes precedence when both are
#: present).  Matched case-insensitively like every other header.
DEADLINE_HEADER = "x-request-deadline-ms"

#: Sentinel distinguishing "request was shed" from any engine result.
_SHED = object()


@dataclass
class HttpConfig:
    """Tunables of the HTTP front door (validated eagerly).

    Attributes
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (tests, smoke).
    max_inflight:
        Engine executions running concurrently — also the size of the
        thread pool that carries blocking service calls off the event
        loop.  This cap is what keeps a traffic spike from turning into
        unbounded thread/memory growth.
    max_pending:
        Admitted requests allowed to wait for an execution slot; one
        more and the server sheds with 429 instead of queueing.
    max_bulk_rows:
        Largest accepted bulk array (413 beyond it).
    max_body_bytes:
        Largest accepted request body (413 beyond it).
    keep_alive_timeout:
        Seconds an idle keep-alive connection may hold its socket.
    warm_kinds:
        Query kinds run once at startup to spin up the executor backend
        and lazy engines; ``/healthz`` reports 503 until they finish.
    latency_window:
        Reservoir size of the per-kind HTTP latency percentiles.
    access_log:
        Structured-JSON access log sink: a file path, ``"-"`` for
        stderr, or ``None`` (default) for none.  The slow-query ring
        behind ``GET /debug/slow`` fills either way.
    log_level:
        Access-log threshold: ``"INFO"`` writes one record per request,
        ``"WARNING"`` only the slow ones (>= the tracer's ``slow_ms``).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_inflight: int = 4
    max_pending: int = 64
    max_bulk_rows: int = 100_000
    max_body_bytes: int = 8 << 20
    keep_alive_timeout: float = 10.0
    warm_kinds: Tuple[str, ...] = ("delta",)
    latency_window: int = 2048
    access_log: Optional[str] = None
    log_level: str = "INFO"

    def __post_init__(self) -> None:
        for name, floor in (("max_inflight", 1), ("max_bulk_rows", 1),
                            ("max_body_bytes", 1), ("latency_window", 1)):
            if getattr(self, name) < floor:
                raise ValueError(f"{name} must be >= {floor}, "
                                 f"got {getattr(self, name)}")
        if self.max_pending < 0:
            raise ValueError(f"max_pending must be >= 0 (0 sheds whenever "
                             f"all slots are busy), got {self.max_pending}")
        if self.keep_alive_timeout <= 0:
            raise ValueError(f"keep_alive_timeout must be positive, "
                             f"got {self.keep_alive_timeout}")
        unknown = set(self.warm_kinds) - set(SHARD_METHODS)
        if unknown:
            raise ValueError(f"unknown warm_kinds {sorted(unknown)}; "
                             f"expected a subset of {SHARD_METHODS}")


# ----------------------------------------------------------------------
# Result codec: method-native python objects <-> JSON-safe structures.
# JSON floats round-trip exactly (repr emits the shortest digits that
# reparse to the same float64), so encoded answers stay bitwise-equal to
# the in-process results — the property the parity tests pin.
# ----------------------------------------------------------------------
def encode_result(kind: str, row: object) -> object:
    """One method-native answer row as a JSON-serializable structure."""
    if kind == "delta":
        return float(row)  # type: ignore[arg-type]
    if kind in ("quantify", "quantify_exact", "quantify_vpr"):
        return {str(int(i)): float(p)
                for i, p in row.items()}  # type: ignore[union-attr]
    if kind == "top_k":
        return [[int(i), float(p)] for i, p in row]  # type: ignore[union-attr]
    if kind == "threshold_nn":
        return {"tau": float(row.tau),  # type: ignore[union-attr]
                "epsilon": float(row.epsilon),
                "certain": [int(i) for i in row.certain],
                "candidates": [int(i) for i in row.candidates]}
    return [int(i) for i in row]  # nonzero_nn  # type: ignore[union-attr]


def decode_result(kind: str, obj: object) -> object:
    """Invert :func:`encode_result` back to the method-native shape.

    Client-side half of the codec (tests, smoke, benchmark clients):
    ``decode_result(kind, json_response) == service.query(kind, q)``
    exactly, floats included.
    """
    if kind == "delta":
        return float(obj)  # type: ignore[arg-type]
    if kind in ("quantify", "quantify_exact", "quantify_vpr"):
        return {int(i): float(p) for i, p in obj.items()}  # type: ignore
    if kind == "top_k":
        return [(int(i), float(p)) for i, p in obj]  # type: ignore
    if kind == "threshold_nn":
        return ThresholdResult(float(obj["tau"]),  # type: ignore[index]
                               float(obj["epsilon"]),
                               [int(i) for i in obj["certain"]],
                               [int(i) for i in obj["candidates"]])
    return [int(i) for i in obj]  # type: ignore[union-attr]


def _parse_point(value: object) -> Tuple[float, float]:
    if (not isinstance(value, (list, tuple)) or len(value) != 2
            or not all(isinstance(c, (int, float)) and not isinstance(c, bool)
                       for c in value)):
        raise ValueError("a query point must be a [x, y] number pair")
    return float(value[0]), float(value[1])


# ----------------------------------------------------------------------
# The transport-agnostic core.
# ----------------------------------------------------------------------
class QueryGateway:
    """Routing + admission control between HTTP transports and a service.

    All mutable gateway state (counters, gauges, latency reservoirs) is
    touched only on the event-loop thread, so it needs no locks; the
    blocking service calls run on a bounded thread pool whose size *is*
    the in-flight cap.
    """

    def __init__(self, service, config: Optional[HttpConfig] = None) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self.service = service
        self.config = config or HttpConfig()
        cfg = self.config
        self.http_stats = ServiceStats(cfg.latency_window)
        # Observability: the service owns the tracer (ServiceConfig
        # trace=...); the gateway owns the access log / slow-query ring,
        # threshold-matched to the tracer's slow_ms.
        self.tracer = service.tracer
        self.request_log = RequestLog(
            path=cfg.access_log, level=cfg.log_level,
            slow_ms=self.tracer.config.slow_ms)
        self._pool = ThreadPoolExecutor(max_workers=cfg.max_inflight,
                                        thread_name_prefix="repro-http")
        self._slots: Optional[asyncio.Semaphore] = None
        self._warm_task: Optional[asyncio.Task] = None
        self._pending = 0
        self._inflight = 0
        # Completion timestamps of recent engine executions: the drain
        # rate behind the dynamic Retry-After estimate on 429s.
        self._completions: deque = deque(maxlen=128)
        self.ready = False
        self.warm_error: Optional[BaseException] = None
        self.requests_total: Dict[Tuple[str, int], int] = {}
        self.shed_total: Dict[str, int] = {}
        self.disconnects_total = 0

    # -------------------------------------------------- lifecycle
    async def startup(self) -> None:
        """Bind loop primitives and kick off the (async) backend warm-up.

        Returns immediately — the server can accept connections while the
        warm-up queries run; ``/healthz`` answers 503 until they finish.
        """
        self._slots = asyncio.Semaphore(self.config.max_inflight)
        # Pre-register every kind in both stats registries so /metrics
        # exports a complete, zero-valued series set from the first
        # scrape (and so never-hit kinds exercise the empty-window
        # percentile path instead of being absent).
        for kind in SHARD_METHODS:
            self.service.stats_registry.method(kind)
            self.http_stats.method(kind)
        self._warm_task = asyncio.get_running_loop().create_task(
            self._warm_async())

    async def _warm_async(self) -> None:
        try:
            await asyncio.get_running_loop().run_in_executor(
                self._pool, self._warm)
        except Exception as exc:  # noqa: BLE001 — surfaced via /healthz
            self.warm_error = exc
        else:
            self.ready = True

    def _warm(self) -> None:
        # One tiny batch per warm kind: spins up the executor backend's
        # pools and builds the lazy batch engines, so the first real
        # request doesn't pay the cold-start.  Runs on a pool thread.
        for kind in self.config.warm_kinds:
            self.service.batch(kind, [(0.0, 0.0)])

    async def shutdown(self) -> None:
        """Stop accepting work and release the execution pool.

        The pool drain is bounded: a worker thread wedged inside an
        engine call (hung backend, fault injection) must not hang the
        whole server teardown silently.  After 30 seconds the drain
        thread is abandoned (daemonized, so it cannot pin the process)
        and a ``RuntimeError`` surfaces the leak to the caller.
        """
        if self._warm_task is not None and not self._warm_task.done():
            self._warm_task.cancel()
            try:
                await self._warm_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self.ready = False
        drained = threading.Event()

        def _drain() -> None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            drained.set()

        threading.Thread(target=_drain, name="repro-http-drain",
                         daemon=True).start()
        deadline = time.monotonic() + 30.0
        try:
            while not drained.is_set():
                if time.monotonic() > deadline:
                    _LOG.error(
                        "gateway execution pool failed to drain within "
                        "30 s (inflight=%d, pending=%d); a worker thread "
                        "is wedged — abandoning the drain",
                        self._inflight, self._pending)
                    raise RuntimeError(
                        "gateway execution pool failed to drain within "
                        "30 s; a worker thread is wedged")
                await asyncio.sleep(0.05)
        finally:
            self.request_log.close()

    # -------------------------------------------------- execution
    def _run_single(self, kind: str, point: Tuple[float, float],
                    params: Dict, deadline: Optional[Deadline]) -> object:
        """Blocking single-point execution (runs on a pool thread).

        Goes through :meth:`QueryService.submit` so concurrent HTTP
        singles coalesce into one vectorized micro-batch — the same
        cache -> coalescer -> engine path as in-process async callers.
        """
        return self.service.submit(kind, point, timeout=deadline,
                                   **params).result()

    def _run_bulk(self, kind: str, rows: List[Tuple[float, float]],
                  params: Dict, deadline: Optional[Deadline]) -> object:
        """Blocking bulk execution: the service's batch front door
        (row-wise cache for small arrays, executor sharding for large).
        """
        return self.service.batch(kind, rows, timeout=deadline, **params)

    async def _admit_and_run(self, kind: str, fn: Callable[[], object]
                             ) -> object:
        """Run *fn* under the in-flight cap, or shed (returns _SHED).

        All counter arithmetic happens between awaits on the loop thread,
        so the pending gauge and the shed decision are race-free.

        The pool execution is wrapped in :func:`asyncio.shield` with the
        slot released by a done-callback rather than a ``finally``: when
        the awaiting handler task is *cancelled* (client disconnect), the
        blocking service call cannot be interrupted — it keeps a pool
        thread busy until it returns — so releasing the semaphore at
        cancellation time would over-admit past ``max_inflight``.  The
        callback frees the slot (and records the drain event feeding the
        Retry-After estimate) exactly when the thread actually finishes.
        """
        sem = self._slots
        assert sem is not None, "gateway.startup() was not awaited"
        parent = current_span()
        if sem.locked():  # every slot busy -> this request must queue
            if self._pending >= self.config.max_pending:
                self.shed_total[kind] = self.shed_total.get(kind, 0) + 1
                return _SHED
            self._pending += 1
            try:
                with self.tracer.start_span("http.queue", parent=parent,
                                            kind=kind):
                    await sem.acquire()
            finally:
                # Runs on the loop thread even when the awaiting task is
                # cancelled mid-queue (client gone): the queue slot is
                # returned before the cancellation propagates.
                self._pending -= 1
        else:
            await sem.acquire()
        self._inflight += 1
        loop = asyncio.get_running_loop()
        if parent.sampled:
            # run_in_executor does not copy contextvars to the pool
            # thread; carry the request span across explicitly.
            work = loop.run_in_executor(
                self._pool, lambda: call_with_span(parent, fn))
        else:
            work = loop.run_in_executor(self._pool, fn)

        def _done(fut: "asyncio.Future") -> None:
            # Loop-thread callback: fires when the pool thread returns,
            # whether or not anyone is still awaiting the result.
            self._inflight -= 1
            sem.release()
            self._completions.append(time.monotonic())
            if not fut.cancelled():
                fut.exception()  # mark retrieved: the awaiter may be gone

        work.add_done_callback(_done)
        return await asyncio.shield(work)

    def _retry_after(self) -> int:
        """Seconds a shed client should wait, from queue depth and the
        recent drain rate; clamped to ``[1, 30]``.

        ``depth / rate`` estimates when the backlog ahead of a retry
        will have drained.  With no recent completions to rate from
        (cold server, stalled engine) the depth itself — seconds if the
        engine manages one execution per second — is the fallback.
        """
        now = time.monotonic()
        depth = self._pending + self._inflight
        recent = [t for t in self._completions if now - t <= 30.0]
        if len(recent) >= 2 and now > recent[0]:
            rate = len(recent) / max(now - recent[0], 1e-3)
            estimate = depth / rate if rate > 0 else 30.0
        else:
            estimate = float(max(depth, 1))
        return max(1, min(30, math.ceil(estimate)))

    def note_client_disconnect(self, path: str) -> None:
        """Account one mid-request client disconnect (nginx's 499)."""
        self.disconnects_total += 1
        route = path.partition("?")[0]
        if route.startswith("/v1/query/"):
            kind = route[len("/v1/query/"):]
            if kind in SHARD_METHODS:
                key = (kind, 499)
                self.requests_total[key] = self.requests_total.get(key, 0) + 1

    # -------------------------------------------------- routing
    async def handle(self, http_method: str, path: str, body: bytes,
                     headers: Optional[Dict[str, str]] = None
                     ) -> Tuple[int, List[Tuple[str, str]], bytes]:
        """Answer one HTTP request: ``(status, headers, payload)``.

        The single routing table shared by the stdlib server and the
        ASGI adapter, so both transports behave identically.  *path*
        may carry a query string (``/debug/traces?format=jsonl``);
        *headers* (lowercase names) feed trace-context propagation
        (``traceparent``).
        """
        path, _, query = path.partition("?")
        if path == "/healthz":
            if http_method != "GET":
                return self._json(405, {"error": "use GET"})
            return self._healthz()
        if path == "/metrics":
            if http_method != "GET":
                return self._json(405, {"error": "use GET"})
            return 200, [("Content-Type", _PROM)], \
                render_prometheus(self).encode("utf-8")
        if path == "/debug/traces":
            if http_method != "GET":
                return self._json(405, {"error": "use GET"})
            return self._debug_traces(query)
        if path == "/debug/slow":
            if http_method != "GET":
                return self._json(405, {"error": "use GET"})
            return self._json(200, {
                "slow_ms": self.request_log.slow_ms,
                "total": self.request_log.slow_total,
                "requests": self.request_log.slow_snapshot(),
            })
        if path in ("", "/"):
            if http_method != "GET":
                return self._json(405, {"error": "use GET"})
            return self._json(200, {
                "service": "repro probabilistic nearest-neighbor queries",
                "kinds": list(SHARD_METHODS),
                "endpoints": {
                    "query": "POST /v1/query/<kind> "
                             '{"q": [x, y]} or {"queries": [[x, y], ...]}',
                    "health": "GET /healthz",
                    "metrics": "GET /metrics",
                },
            })
        if path.startswith("/v1/query/"):
            kind = path[len("/v1/query/"):]
            if kind not in SHARD_METHODS:
                return self._json(404, {"error": f"unknown kind {kind!r}",
                                        "kinds": list(SHARD_METHODS)})
            if http_method != "POST":
                return self._json(405, {"error": "use POST"})
            return await self._handle_query(kind, body, headers or {})
        return self._json(404, {"error": f"no route for {path!r}"})

    def _debug_traces(self, query: str
                      ) -> Tuple[int, List[Tuple[str, str]], bytes]:
        """The trace-store exporters: ``?format=chrome`` (default; the
        Chrome trace-event JSON Perfetto loads as-is) or
        ``?format=jsonl`` (one span record per line); ``?trace_id=``
        restricts the dump to one trace."""
        params = dict(
            pair.partition("=")[::2] for pair in query.split("&") if pair)
        fmt = params.get("format", "chrome")
        trace_id = params.get("trace_id") or None
        records = self.tracer.spans(trace_id)
        if fmt == "jsonl":
            return 200, [("Content-Type",
                          "application/x-ndjson; charset=utf-8")], \
                to_jsonl(records).encode("utf-8")
        if fmt != "chrome":
            return self._json(400, {"error": f"unknown format {fmt!r}; "
                                             "use chrome or jsonl"})
        doc = to_chrome(records)
        doc["metadata"] = {"spans": len(records),
                           "tracer": self.tracer.snapshot()}
        return self._json(200, doc)

    async def _handle_query(self, kind: str, body: bytes,
                            headers: Dict[str, str]
                            ) -> Tuple[int, List[Tuple[str, str]], bytes]:
        start = time.perf_counter()
        span = self.tracer.start_trace(
            "http.request", traceparent=headers.get("traceparent"),
            kind=kind)
        if span is NULL_SPAN:
            status, payload = await self._query_response(kind, body, headers)
        else:
            # The contextvar set survives awaits inside this task, so
            # everything the request touches on the loop thread sees the
            # root span; pool threads get it via call_with_span.
            with use_span(span):
                status, payload = await self._query_response(kind, body,
                                                             headers)
            span.set(status=status)
        duration = time.perf_counter() - start
        mstats = self.http_stats.method(kind)
        mstats.requests += 1
        mstats.latency.record(duration)
        key = (kind, status)
        self.requests_total[key] = self.requests_total.get(key, 0) + 1
        extra: List[Tuple[str, str]] = [("Content-Type", _JSON)]
        if status == 429:
            extra.append(("Retry-After", str(self._retry_after())))
        if span is not NULL_SPAN:
            # Close the root first so the access-log record can fold the
            # whole finished trace into its per-stage breakdown.
            span.finish()
            extra.append(("X-Request-Id", span.trace_id))
            extra.append(("traceparent", format_traceparent(
                span.trace_id, span.span_id, span.sampled)))
        self.request_log.record(kind, status, duration,
                                tracer=self.tracer, span=span)
        return status, extra, self._dump(payload)

    @staticmethod
    def _parse_deadline(doc: Dict, headers: Dict[str, str]
                        ) -> Optional[Deadline]:
        """The request's deadline, armed at parse time.

        The JSON body's ``timeout_ms`` takes precedence over the
        ``X-Request-Deadline-Ms`` header; absent both, ``None`` lets
        :meth:`QueryService._deadline` fall back to the service's
        ``default_timeout``.  Arming here (not at dispatch) makes queue
        time count against the budget — a request that waited out its
        whole deadline in the pending queue 504s without touching the
        engine.  Raises ``ValueError`` on a malformed value.
        """
        raw: object = doc.get("timeout_ms")
        if raw is None:
            raw = headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            ms = float(raw)
        except (TypeError, ValueError):
            raise ValueError(f"timeout_ms must be a positive number of "
                             f"milliseconds, got {raw!r}") from None
        if isinstance(raw, bool) or not math.isfinite(ms) or ms <= 0:
            raise ValueError(f"timeout_ms must be a positive number of "
                             f"milliseconds, got {raw!r}")
        return Deadline.from_timeout_ms(ms)

    async def _query_response(self, kind: str, body: bytes,
                              headers: Dict[str, str]) -> Tuple[int, Dict]:
        try:
            doc = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(doc, dict):
            return 400, {"error": "body must be a JSON object"}
        overrides = doc.get("params", {})
        if not isinstance(overrides, dict):
            return 400, {"error": '"params" must be a JSON object'}
        if ("q" in doc) == ("queries" in doc):
            return 400, {"error": 'pass exactly one of "q" (single point) '
                                  'or "queries" (bulk array)'}
        # Validate method parameters on the loop thread, through the one
        # validation gate every front door shares.
        try:
            params = self.service.canonicalize(kind, dict(overrides))
            deadline = self._parse_deadline(doc, headers)
        except (TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}
        try:
            if "q" in doc:
                point = _parse_point(doc["q"])
                result = await self._admit_and_run(
                    kind, lambda: self._run_single(kind, point, params,
                                                   deadline))
                if result is _SHED:
                    return 429, self._shed_doc()
                return 200, {"kind": kind,
                             "result": encode_result(kind, result)}
            rows_doc = doc["queries"]
            if not isinstance(rows_doc, list):
                return 400, {"error": '"queries" must be a list of '
                                      '[x, y] pairs'}
            if len(rows_doc) > self.config.max_bulk_rows:
                return 413, {"error": f"bulk arrays are capped at "
                                      f"{self.config.max_bulk_rows} rows, "
                                      f"got {len(rows_doc)}"}
            rows = [_parse_point(r) for r in rows_doc]
            result = await self._admit_and_run(
                kind, lambda: self._run_bulk(kind, rows, params, deadline))
            if result is _SHED:
                return 429, self._shed_doc()
            encoded = [encode_result(kind, row) for row in
                       (result if kind != "delta" else list(result))]
            return 200, {"kind": kind, "count": len(encoded),
                         "results": encoded}
        except DeadlineExceeded as exc:
            return 504, {"error": str(exc), "deadline_exceeded": True}
        except ValueError as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — engine failure -> 500
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    def _shed_doc(self) -> Dict:
        return {"error": "server saturated: all "
                         f"{self.config.max_inflight} execution slots busy "
                         f"and {self.config.max_pending} pending requests "
                         "queued; retry with backoff",
                "shed": True}

    def _healthz(self) -> Tuple[int, List[Tuple[str, str]], bytes]:
        doc = {
            "status": "ok" if self.ready else "warming",
            "inflight": self._inflight,
            "pending": self._pending,
            "kinds": list(SHARD_METHODS),
        }
        executor = getattr(self.service, "executor", None)
        if executor is not None:
            health = executor.health()
            doc["executor"] = health
            # Still serving (200) on a fallback backend, but loudly: load
            # balancers keep routing, operators see the degraded rung.
            if self.ready and health.get("degraded"):
                doc["status"] = "degraded"
        status = kernel_status()
        requested = getattr(self.service.index, "kernel", "auto")
        doc["kernel"] = {
            "requested": requested,
            # What this process actually computes with: the requested
            # name resolved through the provider registry ("auto" shows
            # its env-steered / compiler-probed resolution).
            "resolved": (status["selected"] if requested == "auto"
                         else requested),
            "native_available": status["native_available"],
            "native_error": status["native_error"],
        }
        vpr_info = getattr(self.service, "vpr_info", None)
        if vpr_info is not None:
            # The V_Pr serving posture: locator kind, whether a diagram
            # is built, whether its plane is encoded and actually served
            # by the live backend's workers (zero per-worker rebuilds).
            doc["vpr"] = vpr_info()
        if self.warm_error is not None:
            doc["status"] = "warmup-failed"
            doc["error"] = str(self.warm_error)
        return self._json(200 if self.ready else 503, doc)

    # -------------------------------------------------- helpers
    @staticmethod
    def _dump(doc: Dict) -> bytes:
        return json.dumps(doc).encode("utf-8")

    def _json(self, status: int, doc: Dict
              ) -> Tuple[int, List[Tuple[str, str]], bytes]:
        return status, [("Content-Type", _JSON)], self._dump(doc)


# ----------------------------------------------------------------------
# Prometheus text exposition.
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _fmt_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _PromWriter:
    """Accumulate one family (# HELP/# TYPE + samples) at a time."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def family(self, name: str, mtype: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {mtype}")

    def sample(self, name: str, labels: Dict[str, str],
               value: object) -> None:
        if labels:
            inner = ",".join(f'{k}="{_escape_label(str(v))}"'
                             for k, v in labels.items())
            self.lines.append(f"{name}{{{inner}}} {_fmt_value(value)}")
        else:
            self.lines.append(f"{name} {_fmt_value(value)}")

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(gateway: QueryGateway) -> str:
    """The gateway's state in Prometheus text exposition format.

    Latency summaries are derived from the same
    :class:`~repro.serving.stats.LatencyRecorder` reservoirs the python
    API reports — one family for HTTP wall time (queueing included) and
    one for the service's engine batch time.
    """
    w = _PromWriter()
    w.family("repro_ready", "gauge",
             "1 once backend warm-up finished (healthz readiness).")
    w.sample("repro_ready", {}, 1 if gateway.ready else 0)
    w.family("repro_http_inflight", "gauge",
             "Requests currently executing on the engine pool.")
    w.sample("repro_http_inflight", {}, gateway._inflight)
    w.family("repro_http_pending", "gauge",
             "Admitted requests waiting for an execution slot.")
    w.sample("repro_http_pending", {}, gateway._pending)

    w.family("repro_http_requests_total", "counter",
             "HTTP query requests by kind and response code.")
    for (kind, status), count in sorted(gateway.requests_total.items()):
        w.sample("repro_http_requests_total",
                 {"kind": kind, "code": str(status)}, count)
    w.family("repro_http_shed_total", "counter",
             "Requests shed with 429 by the admission controller.")
    for kind in SHARD_METHODS:
        w.sample("repro_http_shed_total", {"kind": kind},
                 gateway.shed_total.get(kind, 0))
    w.family("repro_http_client_disconnects_total", "counter",
             "Requests abandoned by a client disconnect mid-flight (499).")
    w.sample("repro_http_client_disconnects_total", {},
             gateway.disconnects_total)

    # ------------------------------------------------------- resilience
    resilience = getattr(gateway.service, "resilience", None)
    if resilience is not None:
        rsnap = resilience.snapshot()
        for field, help_text in (
                ("retries", "Chunk re-dispatch attempts after a worker "
                            "failure, hang, or injected fault."),
                ("worker_failures", "Chunk executions lost to worker "
                                    "death, fault, or timeout."),
                ("rebuilds", "Worker-pool rebuilds by the self-healing "
                             "path."),
                ("degradations", "Runtime backend downgrades along the "
                                 "shm->process->thread->inline ladder."),
                ("breaker_trips", "Circuit-breaker trips (each one "
                                  "triggers a degradation attempt)."),
                ("deadline_exceeded", "Requests abandoned at their "
                                      "end-to-end deadline (504s)."),
                ("faults_injected", "Faults fired by the configured "
                                    "FaultPlan (chaos testing only).")):
            name = f"repro_{field}_total"
            w.family(name, "counter", help_text)
            w.sample(name, {}, rsnap.get(field, 0))
    executor = getattr(gateway.service, "executor", None)
    if executor is not None:
        health = executor.health()
        w.family("repro_backend_state", "gauge",
                 "Executor backend currently serving this process "
                 "(1 = active; moves down the ladder on degradation).")
        for mode in sorted(m for m in BACKENDS if m != "auto"):
            w.sample("repro_backend_state", {"backend": mode},
                     1 if health.get("mode") == mode else 0)
        w.family("repro_backend_degraded", "gauge",
                 "1 when the executor has left its configured backend.")
        w.sample("repro_backend_degraded", {},
                 1 if health.get("degraded") else 0)

    for family, registry, help_text in (
            ("repro_http_request_latency_seconds", gateway.http_stats,
             "HTTP request wall time per kind (queueing included)."),
            ("repro_service_latency_seconds",
             gateway.service.stats_registry,
             "Engine batch execution time per kind.")):
        w.family(family, "summary", help_text)
        snap = registry.snapshot()
        for kind, stats in snap.items():
            for q, key in (("0.5", "p50_ms"), ("0.9", "p90_ms"),
                           ("0.99", "p99_ms")):
                w.sample(family, {"kind": kind, "quantile": q},
                         stats[key] / 1e3)
            w.sample(f"{family}_count", {"kind": kind}, stats["count"])
            w.sample(f"{family}_sum", {"kind": kind},
                     stats["count"] * stats["mean_ms"] / 1e3)

    w.family("repro_service_requests_total", "counter",
             "Query rows answered by the service per kind "
             "(HTTP and in-process callers).")
    service_snap = gateway.service.stats_registry.snapshot()
    for kind, stats in service_snap.items():
        w.sample("repro_service_requests_total", {"kind": kind},
                 stats["requests"])
    w.family("repro_service_cache_hits_total", "counter",
             "Result-cache hits per kind.")
    w.family("repro_service_cache_misses_total", "counter",
             "Result-cache misses per kind.")
    for kind, stats in service_snap.items():
        w.sample("repro_service_cache_hits_total", {"kind": kind},
                 stats["cache_hits"])
        w.sample("repro_service_cache_misses_total", {"kind": kind},
                 stats["cache_misses"])
    w.family("repro_service_failures_total", "counter",
             "Engine/executor invocations ending in an exception per "
             "kind (deadline expiry, exhausted retries).")
    for kind, stats in service_snap.items():
        w.sample("repro_service_failures_total", {"kind": kind},
                 stats["failures"])

    cache = getattr(gateway.service, "cache", None)
    if cache is not None:
        snap = cache.snapshot()
        w.family("repro_cache_entries", "gauge",
                 "Entries currently held by the result cache.")
        w.sample("repro_cache_entries", {"mode": snap["mode"]},
                 snap["entries"])
        w.family("repro_cache_evictions_total", "counter",
                 "LRU evictions from the result cache.")
        w.sample("repro_cache_evictions_total", {"mode": snap["mode"]},
                 snap["evictions"])
        w.family("repro_cache_kind_evictions_total", "counter",
                 "LRU evictions from the result cache by query kind.")
        for kind, count in sorted(snap["evictions_by_kind"].items()):
            w.sample("repro_cache_kind_evictions_total", {"kind": kind},
                     count)

    # ------------------------------------------------------- observability
    tracer = gateway.tracer
    w.family("repro_trace_sampled", "gauge",
             "Trace sample rate (0 when tracing is disabled).")
    w.sample("repro_trace_sampled", {},
             tracer.config.sample if tracer.enabled else 0.0)
    tsnap = tracer.snapshot()
    w.family("repro_trace_traces_total", "counter",
             "Sampled traces started.")
    w.sample("repro_trace_traces_total", {}, tsnap["traces_started"])
    w.family("repro_trace_spans_total", "counter",
             "Spans recorded into the bounded trace store.")
    w.sample("repro_trace_spans_total", {}, tsnap["spans_recorded"])
    w.family("repro_trace_spans_stored", "gauge",
             "Spans currently held by the bounded trace store.")
    w.sample("repro_trace_spans_stored", {}, tsnap["spans_stored"])

    w.family("repro_stage_duration_seconds", "summary",
             "Per-pipeline-stage durations from sampled trace spans "
             "(cache, coalesce, dispatch, worker compute, reassembly).")
    for stage, stats in tracer.stage_snapshot().items():
        for q, key in (("0.5", "p50_ms"), ("0.9", "p90_ms"),
                       ("0.99", "p99_ms")):
            w.sample("repro_stage_duration_seconds",
                     {"stage": stage, "quantile": q}, stats[key] / 1e3)
        w.sample("repro_stage_duration_seconds_count", {"stage": stage},
                 stats["count"])
        w.sample("repro_stage_duration_seconds_sum", {"stage": stage},
                 stats["count"] * stats["mean_ms"] / 1e3)

    w.family("repro_slow_requests_total", "counter",
             "Requests at or above the slow-query threshold.")
    w.sample("repro_slow_requests_total", {},
             gateway.request_log.slow_total)

    w.family("repro_engine_events_total", "counter",
             "Engine-level work counters (chunks swept, rows retired, "
             "prefix widenings, locator passes) from the hot-path "
             "modules of this process.")
    for event, count in engine_counters().items():
        w.sample("repro_engine_events_total", {"event": event}, count)

    # ------------------------------------------------------- kernel tier
    status = kernel_status()
    w.family("repro_kernel_provider", "gauge",
             "Compute-kernel provider the auto policy resolves in this "
             "process (1 = selected; worker processes resolve their "
             "own).")
    for provider in ("native", "numpy"):
        w.sample("repro_kernel_provider", {"provider": provider},
                 1 if status["selected"] == provider else 0)
    w.family("repro_kernel_native_available", "gauge",
             "1 when the compiled native kernel library is usable here.")
    w.sample("repro_kernel_native_available", {},
             1 if status["native_available"] else 0)
    w.family("repro_kernel_calls_total", "counter",
             "Kernel entry-point invocations by provider and operation "
             "(one per chunk-level call, this process only).")
    for key, count in kernel_counters().items():
        provider, _, op = key.partition(":")
        w.sample("repro_kernel_calls_total",
                 {"provider": provider, "op": op}, count)

    # ------------------------------------------------------- V_Pr plane
    vpr_info = getattr(gateway.service, "vpr_info", None)
    if vpr_info is not None:
        info = vpr_info()
        w.family("repro_vpr_built", "gauge",
                 "1 when this process holds a built V_Pr diagram.")
        w.sample("repro_vpr_built", {}, 1 if info.get("built") else 0)
        w.family("repro_vpr_plane_resident", "gauge",
                 "1 when the built V_Pr plane (face vectors + locator "
                 "arrays) is encoded and served to executor workers — "
                 "workers attach the build-once plane, zero per-worker "
                 "diagram rebuilds (vpr.builds in "
                 "repro_engine_events_total stays at the parent's one).")
        w.sample("repro_vpr_plane_resident", {},
                 1 if info.get("plane_served") else 0)
        stats = info.get("locator_stats") or {}
        w.family("repro_vpr_locator", "gauge",
                 "Point-locator kind of the built V_Pr diagram "
                 "(1 = active; locators answer bitwise identically).")
        for kind in ("slab", "persistent"):
            w.sample("repro_vpr_locator", {"kind": kind},
                     1 if stats.get("kind") == kind else 0)
        if stats:
            w.family("repro_vpr_locator_bytes", "gauge",
                     "Locator structure size in bytes (the slab table "
                     "is Theta(V^2) worst case; the merged-slab "
                     "persistent locator is O(V log V)).")
            w.sample("repro_vpr_locator_bytes", {}, stats.get("nbytes", 0))
            w.family("repro_vpr_locator_entries", "gauge",
                     "Rows/entries held by the locator structure.")
            w.sample("repro_vpr_locator_entries", {},
                     stats.get("entries", 0))
            if stats.get("build_seconds") is not None:
                w.family("repro_vpr_locator_build_seconds", "gauge",
                         "Wall time of the locator structure build.")
                w.sample("repro_vpr_locator_build_seconds", {},
                         stats["build_seconds"])
        if info.get("build_seconds") is not None:
            w.family("repro_vpr_build_seconds", "gauge",
                     "Wall time of the full V_Pr diagram build.")
            w.sample("repro_vpr_build_seconds", {}, info["build_seconds"])
        if info.get("plane_bytes") is not None:
            w.family("repro_vpr_plane_bytes", "gauge",
                     "Total bytes of the encoded shared-plane arrays.")
            w.sample("repro_vpr_plane_bytes", {}, info["plane_bytes"])
    return w.render()


# ----------------------------------------------------------------------
# Transport 1: the pure-stdlib asyncio HTTP/1.1 server.
# ----------------------------------------------------------------------
async def _watch_disconnect(reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter,
                            poll: float = 0.05) -> None:
    """Return once the client side of this connection is gone.

    A queued request whose client already hung up would otherwise hold
    its pending-queue slot (and eventually an execution slot) to compute
    an answer nobody reads; :func:`handle_connection` races this watcher
    against the handler and cancels the loser.
    """
    while not (reader.at_eof() or reader.exception() is not None
               or writer.is_closing()):
        await asyncio.sleep(poll)


async def handle_connection(gateway: QueryGateway,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """Serve one client connection (HTTP/1.1, keep-alive) until it closes."""
    cfg = gateway.config
    try:
        while True:
            try:
                request_line = await asyncio.wait_for(
                    reader.readline(), timeout=cfg.keep_alive_timeout)
            except asyncio.TimeoutError:
                break
            if not request_line:
                break
            try:
                http_method, target, version = \
                    request_line.decode("latin-1").split()
            except ValueError:
                await _write_response(
                    writer, 400, [("Content-Type", _JSON)],
                    b'{"error": "malformed request line"}', close=True)
                break
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > cfg.max_body_bytes:
                await _write_response(
                    writer, 413, [("Content-Type", _JSON)],
                    json.dumps({"error": f"bodies are capped at "
                                f"{cfg.max_body_bytes} bytes"}
                               ).encode(), close=True)
                break
            body = await reader.readexactly(length) if length else b""
            handler = asyncio.ensure_future(gateway.handle(
                http_method, target, body, headers))
            watcher = asyncio.ensure_future(
                _watch_disconnect(reader, writer))
            try:
                await asyncio.wait({handler, watcher},
                                   return_when=asyncio.FIRST_COMPLETED)
            finally:
                watcher.cancel()
                try:
                    await watcher
                except asyncio.CancelledError:
                    pass
            if not handler.done():
                # Client hung up mid-request: cancel the handler — a
                # request still queued gives its pending slot straight
                # back; one already executing is shielded and frees its
                # execution slot when the pool thread returns — and
                # account the abandoned request as a 499.
                handler.cancel()
                try:
                    await handler
                except asyncio.CancelledError:
                    pass
                gateway.note_client_disconnect(target)
                break
            status, extra, payload = handler.result()
            close = (headers.get("connection", "").lower() == "close"
                     or version.upper() != "HTTP/1.1")
            await _write_response(writer, status, extra, payload,
                                  close=close)
            if close:
                break
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
            ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-request; nothing to answer
    except asyncio.CancelledError:
        # Loop teardown cancelled this connection task mid-read; finish
        # normally (the socket closes below) instead of propagating —
        # stdlib streams retrieves task.exception() in a callback and
        # would log the cancellation as an unhandled error.
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def _write_response(writer: asyncio.StreamWriter, status: int,
                          headers: List[Tuple[str, str]], payload: bytes,
                          close: bool = False) -> None:
    reason = _REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}"]
    head += [f"{k}: {v}" for k, v in headers]
    head.append(f"Content-Length: {len(payload)}")
    head.append(f"Connection: {'close' if close else 'keep-alive'}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(payload)
    await writer.drain()


# ----------------------------------------------------------------------
# Transport 2: the thin ASGI layer (FastAPI/uvicorn-style mounting).
# ----------------------------------------------------------------------
def create_asgi_app(gateway: QueryGateway):
    """A minimal ASGI 3 application over *gateway*.

    Handles the ``lifespan`` protocol (startup/shutdown map onto the
    gateway's) and ``http`` scopes; mount it under any ASGI server —
    none is required by this package, the stdlib transport serves the
    same routes.
    """

    async def app(scope, receive, send):
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await gateway.startup()
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    await gateway.shutdown()
                    await send({"type": "lifespan.shutdown.complete"})
                    return
        if scope["type"] != "http":
            raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")
        body = b""
        while True:
            message = await receive()
            if message["type"] != "http.request":
                break
            body += message.get("body", b"")
            if not message.get("more_body", False):
                break
        # Test scopes are minimal dicts; headers/query_string are
        # optional per the spirit of ASGI's "may be empty" fields.
        req_headers = {k.decode("latin-1").lower(): v.decode("latin-1")
                       for k, v in scope.get("headers") or []}
        path = scope["path"]
        query_string = scope.get("query_string") or b""
        if query_string:
            path = f"{path}?{query_string.decode('latin-1')}"
        status, headers, payload = await gateway.handle(
            scope["method"], path, body, req_headers)
        await send({"type": "http.response.start", "status": status,
                    "headers": [(k.lower().encode("latin-1"),
                                 v.encode("latin-1"))
                                for k, v in headers]
                    + [(b"content-length", str(len(payload)).encode())]})
        await send({"type": "http.response.body", "body": payload})

    return app


# ----------------------------------------------------------------------
# Server lifecycles: blocking runner and background thread.
# ----------------------------------------------------------------------
async def _serve_async(gateway: QueryGateway, host: str, port: int,
                       started: Optional[Callable[[int], None]] = None,
                       stop: Optional[asyncio.Event] = None) -> None:
    await gateway.startup()
    server = await asyncio.start_server(
        lambda r, w: handle_connection(gateway, r, w), host, port)
    bound = server.sockets[0].getsockname()[1]
    if started is not None:
        started(bound)
    try:
        async with server:
            if stop is None:
                await server.serve_forever()
            else:
                await stop.wait()
    finally:
        await gateway.shutdown()


def serve_forever(service, config: Optional[HttpConfig] = None,
                  announce: Optional[Callable[[str], None]] = print) -> None:
    """Run the stdlib HTTP server on *service* until interrupted."""
    gateway = QueryGateway(service, config)
    cfg = gateway.config

    def _started(port: int) -> None:
        if announce is not None:
            announce(f"serving {len(SHARD_METHODS)} query kinds on "
                     f"http://{cfg.host}:{port} "
                     f"(max_inflight={cfg.max_inflight}, "
                     f"max_pending={cfg.max_pending}); "
                     f"POST /v1/query/<kind>, GET /healthz, GET /metrics")

    try:
        asyncio.run(_serve_async(gateway, cfg.host, cfg.port,
                                 started=_started))
    except KeyboardInterrupt:
        if announce is not None:
            announce("interrupted; shutting down")


class ServerThread:
    """The HTTP front door on a background event-loop thread.

    The process-internal harness used by tests, the E24 benchmark, and
    the CI smoke: start() returns once the socket is bound (the bound
    port is in :attr:`port`), stop() shuts the loop down and joins.
    The gateway stays reachable for white-box assertions.
    """

    def __init__(self, service, config: Optional[HttpConfig] = None) -> None:
        self.gateway = QueryGateway(service, config)
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-http-server",
                                        daemon=True)

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("HTTP server failed to start in time")
        if self.error is not None:
            raise RuntimeError("HTTP server failed to start") \
                from self.error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        cfg = self.gateway.config

        def _started(port: int) -> None:
            self.port = port
            self._ready.set()

        try:
            await _serve_async(self.gateway, cfg.host, cfg.port,
                               started=_started, stop=self._stop)
        except BaseException as exc:  # noqa: BLE001 — surfaced by start()
            self.error = exc
            self._ready.set()

    def stop(self) -> None:
        """Shut the server loop down and join its thread.

        A hung join is an error, not a shrug: a server thread still
        alive after 30 seconds means a wedged teardown (stuck engine
        call, unjoinable pool), and silently leaking it would let tests
        and operators believe the port was released.
        """
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        if self._thread.is_alive():
            _LOG.error(
                "http server thread %r did not stop within 30 s "
                "(port=%s, gateway inflight=%d, pending=%d); "
                "the thread is leaked",
                self._thread.name, self.port,
                self.gateway._inflight, self.gateway._pending)
            raise RuntimeError(
                "HTTP server thread failed to stop within 30 s")
        if self.error is not None and self.port is not None:
            # An error raised *after* a successful start (teardown
            # failures included) would otherwise vanish with the thread.
            raise RuntimeError("HTTP server terminated with an error") \
                from self.error

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# The self-smoke used by `python -m repro serve-http --smoke` and CI.
# ----------------------------------------------------------------------
def _http_json(port: int, method: str, path: str,
               doc: Optional[Dict] = None, timeout: float = 30.0,
               headers: Optional[Dict[str, str]] = None
               ) -> Tuple[int, object, str, Dict[str, str]]:
    """One HTTP request against localhost;
    ``(status, parsed, raw, response_headers)``."""
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(doc) if doc is not None else None
        send = {"Content-Type": _JSON} if body else {}
        if headers:
            send.update(headers)
        conn.request(method, path, body=body, headers=send)
        resp = conn.getresponse()
        raw = resp.read().decode("utf-8")
        parsed: object = None
        if resp.headers.get_content_type() == "application/json":
            parsed = json.loads(raw)
        return resp.status, parsed, raw, \
            {k.lower(): v for k, v in resp.getheaders()}
    finally:
        conn.close()


def run_smoke(backend: str = "inline", metrics_out: Optional[str] = None,
              log: Callable[[str], None] = print,
              trace_out: Optional[str] = None) -> int:
    """Boot the server, exercise every kind single + bulk, force a 429.

    Returns a process exit code (0 = all checks passed).  Used by the CI
    ``http-smoke``/``obs-smoke`` jobs; ``metrics_out`` saves the final
    /metrics scrape and ``trace_out`` the Chrome trace-event export.
    The server runs fully traced (``sample=1.0``, ``slow_ms=0`` so every
    request lands in the slow ring) — the per-kind parity checks therefore
    also prove that tracing does not perturb answers.
    """
    import random

    from ..core.index import PNNIndex
    from ..core.workloads import random_discrete_points
    from ..obs.trace import TraceConfig, parse_traceparent

    # Small discrete fleet: every kind answerable, and the quantify_vpr
    # endpoint's lazy V_Pr build (arrangement size grows ~quartically in
    # instance count) stays sub-second.
    index = PNNIndex(random_discrete_points(12, 2, seed=7, spread=2.0))
    workers = 0 if backend == "inline" else 2
    service = index.serve(workers=workers, backend=backend,
                          max_batch=64, flush_window=0.002,
                          cache_capacity=4096,
                          shard_min_batch=4096 if backend == "inline" else 32,
                          trace=TraceConfig(enabled=True, sample=1.0,
                                            slow_ms=0.0))
    config = HttpConfig(port=0, max_inflight=2, max_pending=2,
                        warm_kinds=("delta", "nonzero_nn"))
    failures: List[str] = []

    def check(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)

    rng = random.Random(99)
    queries = [(rng.uniform(-2.0, 16.0), rng.uniform(-2.0, 16.0))
               for _ in range(6)]
    with service, ServerThread(service, config) as server:
        port = server.port
        assert port is not None
        deadline = time.monotonic() + 30
        status = 0
        while time.monotonic() < deadline:
            status, _, _, _ = _http_json(port, "GET", "/healthz")
            if status == 200:
                break
            time.sleep(0.05)
        check(status == 200, f"healthz never became ready ({status})")

        for kind in SHARD_METHODS:
            expected = service.batch(kind, queries)
            # Compare in encoded (JSON-safe) form on both sides: floats
            # survive the JSON round-trip bitwise, so equality here is
            # exact parity with the in-process answers.
            rows = [encode_result(kind, row) for row in
                    (list(expected) if kind == "delta" else expected)]
            status, doc, _, hdrs = _http_json(
                port, "POST", f"/v1/query/{kind}", {"q": list(queries[0])})
            check(status == 200, f"{kind} single returned {status}")
            if status == 200:
                check(doc["result"] == rows[0],
                      f"{kind} single result differs from service.batch")
            check(len(hdrs.get("x-request-id", "")) == 32,
                  f"{kind} single response is missing X-Request-Id")
            status, doc, _, _ = _http_json(
                port, "POST", f"/v1/query/{kind}",
                {"queries": [list(q) for q in queries]})
            check(status == 200, f"{kind} bulk returned {status}")
            if status == 200:
                check(doc["results"] == rows,
                      f"{kind} bulk results differ from service.batch")
            log(f"kind {kind}: single + bulk parity verified")

        # Validation behavior: unknown kind 404, bad params 400.
        status, _, _, _ = _http_json(port, "POST", "/v1/query/nope",
                                     {"q": [0, 0]})
        check(status == 404, f"unknown kind returned {status}, wanted 404")
        status, _, _, _ = _http_json(port, "POST", "/v1/query/delta",
                                     {"q": [0, 0], "params": {"bogus": 1}})
        check(status == 400, f"bad params returned {status}, wanted 400")

        # Saturate admission control: block the engine behind an event,
        # fill every slot and the whole pending queue, then probe.
        gate = threading.Event()
        original = server.gateway._run_bulk

        def held(kind, rows_, params, deadline=None):
            gate.wait(timeout=30)
            return original(kind, rows_, params, deadline)

        server.gateway._run_bulk = held
        blocked = []

        def fire():
            blocked.append(_http_json(port, "POST", "/v1/query/delta",
                                      {"queries": [[0.0, 0.0]]}))

        threads = [threading.Thread(target=fire) for _ in
                   range(config.max_inflight + config.max_pending)]
        for t in threads:
            t.start()
        saturated = False
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if (server.gateway._inflight >= config.max_inflight
                    and server.gateway._pending >= config.max_pending):
                saturated = True
                break
            time.sleep(0.01)
        check(saturated, "admission gauges never reached saturation")
        status, doc, _, _ = _http_json(port, "POST", "/v1/query/delta",
                                       {"queries": [[0.0, 0.0]]})
        check(status == 429, f"saturated server returned {status}, "
                             f"wanted 429")
        gate.set()
        for t in threads:
            t.join(timeout=30)
        server.gateway._run_bulk = original
        check(all(s == 200 for s, _, _, _ in blocked),
              f"held requests finished {[s for s, _, _, _ in blocked]}, "
              f"wanted all 200")
        log("admission control: 429 under saturation, queued requests "
            "completed after release")

        # ------------------------------------------------ tracing checks
        # Upstream context propagation: a request carrying a W3C
        # traceparent must join that trace (X-Request-Id == its trace id)
        # and answer with a well-formed traceparent of its own.
        upstream_trace = "a" * 32
        status, _, _, hdrs = _http_json(
            port, "POST", "/v1/query/delta",
            {"queries": [[float(i), 0.5] for i in range(80)]},
            headers={"traceparent": f"00-{upstream_trace}-{'b' * 16}-01"})
        check(status == 200, f"traced bulk returned {status}")
        check(hdrs.get("x-request-id") == upstream_trace,
              "upstream traceparent was not honored")
        parsed_tp = parse_traceparent(hdrs.get("traceparent", ""))
        check(parsed_tp is not None and parsed_tp[0] == upstream_trace,
              "response traceparent is malformed or re-rooted")

        status, doc, _, _ = _http_json(
            port, "GET", f"/debug/traces?trace_id={upstream_trace}")
        check(status == 200 and bool(doc.get("traceEvents")),
              "/debug/traces has no spans for the propagated trace")
        names = {e["name"] for e in doc.get("traceEvents", [])}
        wanted = {"http.request", "service.batch", "service.cache"}
        if backend != "inline":
            wanted |= {"shard.dispatch", "worker.compute",
                       "shard.reassemble"}
        check(wanted <= names,
              f"trace is missing stages {sorted(wanted - names)}")
        status, full, _, _ = _http_json(port, "GET", "/debug/traces")
        check(status == 200 and len(full["traceEvents"]) >= 1,
              "/debug/traces full dump is empty")
        if trace_out:
            with open(trace_out, "w", encoding="utf-8") as fh:
                json.dump(full, fh)
            log(f"chrome trace export saved to {trace_out}")

        status, sdoc, _, _ = _http_json(port, "GET", "/debug/slow")
        check(status == 200 and sdoc["total"] > 0
              and bool(sdoc["requests"]),
              "slow-query log is empty (slow_ms=0 marks every request)")
        log(f"tracing: {len(full['traceEvents'])} spans stored, "
            f"{sdoc['total']} slow-log records, trace context propagated")

        status, _, raw, _ = _http_json(port, "GET", "/metrics")
        check(status == 200, f"/metrics returned {status}")
        check("repro_http_requests_total" in raw
              and "repro_http_shed_total" in raw
              and 'quantile="0.99"' in raw,
              "/metrics scrape is missing expected families")
        check("repro_stage_duration_seconds" in raw
              and "repro_trace_spans_total" in raw
              and "repro_slow_requests_total" in raw,
              "/metrics scrape is missing tracing families")
        if metrics_out:
            with open(metrics_out, "w", encoding="utf-8") as fh:
                fh.write(raw)
            log(f"metrics scrape saved to {metrics_out}")

    if failures:
        for line in failures:
            log(f"FAIL: {line}")
        return 1
    log("http smoke: all checks passed")
    return 0


def run_chaos_smoke(backend: str = "process",
                    metrics_out: Optional[str] = None,
                    log: Callable[[str], None] = print) -> int:
    """Fault-injection self-test: recovery, deadlines, degradation.

    Boots the HTTP server over one service whose executor is fed a
    sequence of deterministic :class:`~repro.serving.faults.FaultPlan`
    phases, and checks the full resilience story end to end:

    1. **recovery** — a worker crash (pool backends) or an in-compute
       fault (thread/inline) on the first chunk; the response must be
       200 and bitwise-identical to the unsharded oracle, with the
       retry/rebuild counters incremented;
    2. **deadline** — a hung first chunk against a 300 ms ``timeout_ms``;
       the response must be 504 with no admission slots leaked;
    3. **degradation** — a persistent per-method fault walks the
       backend ladder until the circuit breaker lands on ``inline``;
       the faulted kind fails, every *other* kind keeps answering
       correctly, and ``/healthz`` reports ``degraded``.

    Returns a process exit code (0 = all checks passed).  The CI
    ``chaos-smoke`` job runs it once per backend; ``metrics_out`` saves
    the final /metrics scrape — by then every resilience counter
    (retries, worker failures, rebuilds, deadline 504s, breaker trips,
    degradations, injected faults) is provably nonzero.
    """
    import random

    from ..core.index import PNNIndex
    from ..core.workloads import random_discrete_points
    from .faults import FaultPlan

    index = PNNIndex(random_discrete_points(12, 2, seed=7, spread=2.0))
    rng = random.Random(41)
    queries = [(rng.uniform(-2.0, 16.0), rng.uniform(-2.0, 16.0))
               for _ in range(48)]
    failures: List[str] = []

    def check(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)
        log(("ok   " if cond else "FAIL ") + what)

    # Sharded answers must stay bitwise-equal to the unsharded batch
    # calls, faults or not — encoded form, same contract as run_smoke.
    oracle = {
        "delta": [encode_result("delta", r)
                  for r in list(index.batch_delta(queries))],
        "nonzero_nn": [encode_result("nonzero_nn", r)
                       for r in index.batch_nonzero_nn(queries)],
    }
    crashy = backend in ("process", "shm")
    phase1 = ("crash_worker:chunk=0" if crashy
              else "raise_in_compute:chunk=0")
    service = index.serve(workers=2, backend=backend, shard_min_batch=8,
                          shard_chunk=8, cache_capacity=0, coalesce=False,
                          retries=2, faults=phase1)
    check(service.executor is not None, "service built a shard executor")
    config = HttpConfig(port=0, max_inflight=2, max_pending=4,
                        warm_kinds=("delta",))
    with service, ServerThread(service, config) as server:
        port = server.port
        assert port is not None
        deadline_at = time.monotonic() + 30
        status = 0
        while time.monotonic() < deadline_at:
            status, _, _, _ = _http_json(port, "GET", "/healthz")
            if status == 200:
                break
            time.sleep(0.05)
        check(status == 200, f"healthz became ready ({status})")
        executor = service.executor

        # ---------------------------------------- phase 1: recovery
        t0 = time.perf_counter()
        status, doc, _, _ = _http_json(
            port, "POST", "/v1/query/delta",
            {"queries": [list(q) for q in queries]})
        recovery_ms = (time.perf_counter() - t0) * 1e3
        check(status == 200,
              f"{phase1}: request survived the fault ({status})")
        check(status == 200 and doc["results"] == oracle["delta"],
              "recovered answers are bitwise-equal to the oracle")
        snap = service.resilience.snapshot()
        check(snap["retries"] >= 1 and snap["worker_failures"] >= 1,
              f"failed chunk was retried (retries={snap['retries']}, "
              f"worker_failures={snap['worker_failures']})")
        if crashy:
            # A crashed worker takes its counter bump with it (os._exit
            # fires worker-side); the rebuild is the parent-side proof.
            check(snap["rebuilds"] >= 1, "dead pool was rebuilt "
                  f"(rebuilds={snap['rebuilds']})")
        else:
            check(snap["faults_injected"] >= 1, "fault fired "
                  f"(faults_injected={snap['faults_injected']})")
        log(f"phase 1: recovered in {recovery_ms:.0f} ms on {backend}")

        # ---------------------------------------- phase 2: deadline
        executor.faults = FaultPlan.coerce(
            "slow_chunk:chunk=0,delay=2,attempts=any")
        t0 = time.perf_counter()
        status, doc, _, _ = _http_json(
            port, "POST", "/v1/query/delta",
            {"queries": [list(q) for q in queries], "timeout_ms": 300})
        elapsed = time.perf_counter() - t0
        check(status == 504 and doc.get("deadline_exceeded") is True,
              f"hung chunk against timeout_ms=300 answered {status}")
        # Pool backends abandon the hung chunk at the deadline; the
        # thread warm-up path and the inline backend cannot preempt a
        # chunk already running on the caller, so allow one chunk delay.
        check(elapsed < 5.0, f"504 arrived in {elapsed * 1e3:.0f} ms")
        gw = server.gateway
        time.sleep(0.1)
        check(gw._inflight == 0 and gw._pending == 0,
              f"no admission slots leaked (inflight={gw._inflight}, "
              f"pending={gw._pending})")
        check(service.resilience.get("deadline_exceeded") >= 1,
              "deadline_exceeded counter incremented")

        # ---------------------------------------- phase 3: degradation
        # Every chunk of the faulted kind fails, so the breaker sees
        # consecutive failures (successes from healthy sibling chunks
        # would reset its count — by design) and walks the ladder.
        executor.faults = FaultPlan.coerce(
            "raise_in_compute:method=delta,attempts=any")
        status, _, _, _ = _http_json(
            port, "POST", "/v1/query/delta",
            {"queries": [list(q) for q in queries]})
        check(status == 500, "persistently faulted kind failed loudly "
                             f"({status})")
        check(service.resilience.get("breaker_trips") >= 1,
              "circuit breaker tripped (trips="
              f"{service.resilience.get('breaker_trips')})")
        health = executor.health()
        if backend == "inline":
            # Already on the bottom rung: nowhere to degrade to — the
            # breaker trips, the request fails, the mode stays inline.
            check(health["mode"] == "inline" and not health["degraded"],
                  "inline floor held (no rung below to degrade to)")
        else:
            check(bool(health["degraded"])
                  and health["mode"] == "inline",
                  f"breaker walked the ladder to inline "
                  f"(mode={health['mode']}, degradations="
                  f"{service.resilience.get('degradations')})")
        status, doc, _, _ = _http_json(
            port, "POST", "/v1/query/nonzero_nn",
            {"queries": [list(q) for q in queries]})
        check(status == 200 and doc["results"] == oracle["nonzero_nn"],
              "unfaulted kinds still answer correctly while degraded")
        status, hdoc, _, _ = _http_json(port, "GET", "/healthz")
        if backend == "inline":
            check(status == 200 and hdoc["status"] == "ok",
                  f"healthz stays ok on the inline floor "
                  f"({hdoc['status']})")
        else:
            check(status == 200 and hdoc["status"] == "degraded",
                  f"healthz reports degraded ({hdoc['status']})")

        status, _, raw, _ = _http_json(port, "GET", "/metrics")
        check(status == 200, f"/metrics returned {status}")
        want_nonzero = ["repro_retries_total", "repro_worker_failures_total",
                        "repro_deadline_exceeded_total",
                        "repro_faults_injected_total",
                        "repro_breaker_trips_total"]
        if backend != "inline":
            want_nonzero += ["repro_degradations_total",
                             "repro_backend_degraded"]
        if crashy:
            want_nonzero.append("repro_rebuilds_total")
        values = {}
        for line in raw.splitlines():
            if line.startswith("#") or " " not in line:
                continue
            name, _, value = line.rpartition(" ")
            values[name.partition("{")[0]] = values.get(
                name.partition("{")[0], 0.0) + float(value)
        for family in want_nonzero:
            check(values.get(family, 0) > 0, f"{family} is nonzero "
                  f"({values.get(family, 0):g})")
        check(values.get("repro_backend_state", 0) == 1,
              "exactly one backend_state gauge is set")
        if metrics_out:
            with open(metrics_out, "w", encoding="utf-8") as fh:
                fh.write(raw)
            log(f"metrics scrape saved to {metrics_out}")

    if failures:
        log(f"chaos smoke [{backend}]: {len(failures)} check(s) FAILED")
        return 1
    log(f"chaos smoke [{backend}]: all checks passed")
    return 0


def run_plane_smoke(backend: str = "process",
                    metrics_out: Optional[str] = None,
                    log: Callable[[str], None] = print) -> int:
    """Shared-plane V_Pr serving self-test: build once, fan out, zero
    per-worker rebuilds.

    Builds one persistent-locator ``V_Pr`` in the parent, serves
    ``quantify_vpr`` over a plane-shipping pool backend (``process`` or
    ``shm``), and checks the whole story end to end:

    1. the executor came up on the **requested** backend (no silent
       degradation) and reports ``serves_plane``;
    2. HTTP bulk ``quantify_vpr`` answers are bitwise-identical to the
       parent's unsharded oracle, *and* the request actually fanned out
       over the workers (``sharded_calls`` incremented — the old
       parent-only routing would leave it at 0);
    3. the parent-side ``vpr.builds`` engine counter stays at exactly
       the one pre-serve build — workers attach the shipped plane, and
       their replicas are structurally forbidden from building
       (:attr:`~repro.core.index.PNNIndex.vpr_build_forbidden`), so a
       rebuild anywhere would either crash the request or show up here;
    4. ``/healthz`` reports the plane resident and ``/metrics`` exports
       ``repro_vpr_plane_resident 1`` plus the locator families.

    Returns a process exit code (0 = all checks passed).  The CI
    ``vpr-plane-smoke`` job runs it once per pool backend;
    ``metrics_out`` saves the final scrape.
    """
    import random

    from ..core.index import PNNIndex
    from ..core.workloads import random_discrete_points
    from ..obs.metrics import ENGINE

    if backend not in ("process", "shm"):
        log(f"FAIL: plane smoke needs a pool backend, got {backend!r}")
        return 1
    failures: List[str] = []

    def check(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)
        log(("ok   " if cond else "FAIL ") + what)

    index = PNNIndex(random_discrete_points(12, 2, seed=7, spread=2.0))
    builds_before = ENGINE.get("vpr.builds")
    vpr = index.build_vpr()
    index.use_vpr(vpr)
    check(vpr.locator_kind == "persistent",
          f"diagram built with the persistent locator "
          f"({vpr.locator_kind})")
    rng = random.Random(53)
    queries = [(rng.uniform(-2.0, 16.0), rng.uniform(-2.0, 16.0))
               for _ in range(64)]
    oracle = [encode_result("quantify_vpr", row)
              for row in index.batch_quantify_vpr(queries)]

    service = index.serve(workers=2, backend=backend, shard_min_batch=8,
                          shard_chunk=8, cache_capacity=0, coalesce=False)
    config = HttpConfig(port=0, max_inflight=2, max_pending=4,
                        warm_kinds=("delta",))
    with service, ServerThread(service, config) as server:
        port = server.port
        assert port is not None
        deadline_at = time.monotonic() + 30
        status = 0
        while time.monotonic() < deadline_at:
            status, _, _, _ = _http_json(port, "GET", "/healthz")
            if status == 200:
                break
            time.sleep(0.05)
        check(status == 200, f"healthz became ready ({status})")

        executor = service.executor
        check(executor is not None and executor.mode == backend,
              f"executor runs on the requested backend "
              f"(mode={getattr(executor, 'mode', None)})")
        info = service.vpr_info()
        check(info["plane_encoded"] is True,
              "the built plane was encoded for the executor")
        check(info["plane_served"] is True,
              "the live backend serves the shared plane")

        status, doc, _, _ = _http_json(
            port, "POST", "/v1/query/quantify_vpr",
            {"queries": [list(q) for q in queries]})
        check(status == 200, f"bulk quantify_vpr answered {status}")
        check(status == 200 and doc["results"] == oracle,
              "fan-out answers are bitwise-equal to the parent oracle")
        mstats = service.stats()["methods"].get("quantify_vpr", {})
        check(mstats.get("sharded_calls", 0) >= 1,
              f"quantify_vpr actually fanned out over {backend} workers "
              f"(sharded_calls={mstats.get('sharded_calls', 0)})")

        builds = ENGINE.get("vpr.builds") - builds_before
        check(builds == 1,
              f"exactly one V_Pr build in this process (vpr.builds "
              f"delta={builds}); workers attached the shipped plane")

        status, hdoc, _, _ = _http_json(port, "GET", "/healthz")
        hvpr = (hdoc or {}).get("vpr", {})
        check(status == 200 and hvpr.get("plane_served") is True,
              "healthz reports the plane resident")
        check(hvpr.get("locator_stats", {}).get("kind") == "persistent",
              "healthz reports the persistent locator")

        status, _, raw, _ = _http_json(port, "GET", "/metrics")
        check(status == 200, f"/metrics returned {status}")
        check("repro_vpr_plane_resident 1" in raw,
              "/metrics exports repro_vpr_plane_resident 1")
        check('repro_vpr_locator{kind="persistent"} 1' in raw,
              "/metrics exports the persistent locator gauge")
        expected_builds = builds_before + 1
        check(f'repro_engine_events_total{{event="vpr.builds"}} '
              f'{expected_builds}' in raw,
              "/metrics shows exactly one new parent-side vpr.builds "
              "event")
        check("repro_vpr_plane_bytes" in raw
              and "repro_vpr_locator_bytes" in raw,
              "/metrics exports the plane/locator size gauges")
        if metrics_out:
            with open(metrics_out, "w", encoding="utf-8") as fh:
                fh.write(raw)
            log(f"metrics scrape saved to {metrics_out}")

    if failures:
        log(f"plane smoke [{backend}]: {len(failures)} check(s) FAILED")
        return 1
    log(f"plane smoke [{backend}]: all checks passed")
    return 0
