"""The nonzero Voronoi diagram for *discrete* distributions (Theorem 2.14).

With each ``P_i`` a discrete distribution over at most ``k`` sites, the
distance extremes ``delta_i`` / ``Delta_i`` are nearest/farthest-site
distances, so every curve ``gamma_i`` is piecewise linear: locally it is
the *bisector* of the active nearest site of ``P_i`` and the active
farthest site of the witness ``P_u`` (Lemma 2.12's lifting makes this a
difference of linear functions).  Consequently **every vertex of
``V!=0(P)`` is the circumcenter of three sites** — the third equality
pinning the vertex comes from one of:

* another curve passing through (crossing: ``delta_j = Delta``),
* a nearest-site tie within ``P_i`` (corner of the ``delta_i`` surface),
* a farthest-site tie within the witness ``P_u`` (corner of ``Delta_u``),
* a witness swap ``Delta_u = Delta_v`` (edge of the envelope ``Delta``).

The builder enumerates all ``C(N, 3)`` site triples with at least two
distinct parents (numpy-batched), computes circumcenters, and validates
the envelope conditions — a faithful, exact-up-to-tolerance census of the
diagram's vertices, which is the quantity Theorem 2.14 bounds by
``O(k n^3)``.

The module also exposes the dominance polygons
``K_ij = {x : Delta_j(x) <= delta_i(x)}`` — the convex polygons whose
boundaries are the paper's ``gamma_ij`` curves; Lemma 2.13 bounds their
complexity by ``O(k)``, which the tests verify against the ``k^2``
halfplanes they are cut from.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..geometry.halfplanes import Halfplane, halfplane_intersection
from ..geometry.primitives import Point
from ..uncertain.discrete import DiscreteUncertainPoint

__all__ = ["DiscreteNonzeroVoronoi", "dominance_polygon"]


def dominance_polygon(stronger: DiscreteUncertainPoint,
                      weaker: DiscreteUncertainPoint,
                      bound: float = 1e6) -> List[Point]:
    """``K = {x : Delta_stronger(x) <= delta_weaker(x)}`` as a convex polygon.

    The region of queries from which *every* site of ``stronger`` is at
    least as close as *every* site of ``weaker`` — the paper's ``K_ij``
    with ``j = stronger``, ``i = weaker``.  Intersection of the
    ``k_j * k_i`` site-pair halfplanes, clipped to ``[-bound, bound]^2``.
    """
    halfplanes: List[Halfplane] = []
    for pa, _ in stronger.sites_with_weights():
        for pb, _ in weaker.sites_with_weights():
            # d(x, pa) <= d(x, pb)  <=>  2 <x, pb - pa> <= |pb|^2 - |pa|^2
            a = 2.0 * (pb[0] - pa[0])
            b = 2.0 * (pb[1] - pa[1])
            c = (pb[0] ** 2 + pb[1] ** 2) - (pa[0] ** 2 + pa[1] ** 2)
            if a == 0.0 and b == 0.0:
                if c < 0.0:
                    return []  # coincident sites can never dominate strictly
                continue
            halfplanes.append(Halfplane(a, b, c))
    return halfplane_intersection(halfplanes, bound=bound)


class DiscreteNonzeroVoronoi:
    """Vertex census and queries for the discrete-case ``V!=0``.

    Parameters
    ----------
    points:
        The discrete uncertain points.
    tol:
        Relative tolerance for the distance-equality validations.
    """

    def __init__(self, points: Sequence[DiscreteUncertainPoint],
                 tol: float = 1e-7) -> None:
        if not points:
            raise ValueError("need at least one uncertain point")
        self.points = list(points)
        self.tol = tol
        sites: List[Point] = []
        owners: List[int] = []
        for i, p in enumerate(self.points):
            for site, _ in p.sites_with_weights():
                sites.append(site)
                owners.append(i)
        self._sites = np.asarray(sites, dtype=float)
        self._owners = np.asarray(owners, dtype=int)
        self.total_sites = len(sites)
        self.vertices: List[Point] = []
        self.vertex_kinds: List[str] = []
        self._enumerate_vertices()

    # ------------------------------------------------------------------
    def _enumerate_vertices(self) -> None:
        n_sites = self.total_sites
        if n_sites < 3:
            return
        triples = [t for t in itertools.combinations(range(n_sites), 3)
                   if len({self._owners[t[0]], self._owners[t[1]],
                           self._owners[t[2]]}) >= 2]
        if not triples:
            return
        tri = np.asarray(triples, dtype=int)
        a = self._sites[tri[:, 0]]
        b = self._sites[tri[:, 1]]
        c = self._sites[tri[:, 2]]
        # Batched circumcenters.
        d = 2.0 * (a[:, 0] * (b[:, 1] - c[:, 1])
                   + b[:, 0] * (c[:, 1] - a[:, 1])
                   + c[:, 0] * (a[:, 1] - b[:, 1]))
        ok = np.abs(d) > 1e-12
        if not np.any(ok):
            return
        a, b, c, d = a[ok], b[ok], c[ok], d[ok]
        a2 = np.sum(a * a, axis=1)
        b2 = np.sum(b * b, axis=1)
        c2 = np.sum(c * c, axis=1)
        ux = (a2 * (b[:, 1] - c[:, 1]) + b2 * (c[:, 1] - a[:, 1])
              + c2 * (a[:, 1] - b[:, 1])) / d
        uy = (a2 * (c[:, 0] - b[:, 0]) + b2 * (a[:, 0] - c[:, 0])
              + c2 * (b[:, 0] - a[:, 0])) / d
        centers = np.stack([ux, uy], axis=1)
        radius = np.hypot(a[:, 0] - ux, a[:, 1] - uy)

        # Validate in chunks to bound the distance-matrix memory.
        n = len(self.points)
        accepted: List[Tuple[Point, str]] = []
        chunk = max(1, 2_000_000 // max(n_sites, 1))
        for lo in range(0, len(centers), chunk):
            hi = lo + chunk
            ctr = centers[lo:hi]
            rad = radius[lo:hi]
            dmat = np.hypot(ctr[:, None, 0] - self._sites[None, :, 0],
                            ctr[:, None, 1] - self._sites[None, :, 1])
            band = self.tol * np.maximum(1.0, rad)[:, None]
            # Per-parent delta / Delta at each candidate, plus the number of
            # the parent's sites lying exactly at the circumradius (used for
            # both nearest-site and farthest-site tie detection).
            delta_p = np.full((len(ctr), n), np.inf)
            big_p = np.zeros((len(ctr), n))
            at_radius = np.zeros((len(ctr), n), dtype=int)
            for parent in range(n):
                cols = dmat[:, self._owners == parent]
                delta_p[:, parent] = cols.min(axis=1)
                big_p[:, parent] = cols.max(axis=1)
                at_radius[:, parent] = np.sum(
                    np.abs(cols - rad[:, None]) <= band, axis=1)
            delta_env = big_p.min(axis=1)
            flat_band = band[:, 0]
            # Condition A: the circumradius is the envelope value Delta(x).
            cond_env = np.abs(delta_env - rad) <= flat_band
            # Curves through x: parents with delta = Delta.
            on_curves = np.abs(delta_p - rad[:, None]) <= band
            on_count = on_curves.sum(axis=1)
            # Witness parents: Delta_u = Delta.
            witnesses = np.abs(big_p - rad[:, None]) <= band
            witness_count = witnesses.sum(axis=1)
            for t in np.nonzero(cond_env & (on_count >= 1))[0]:
                kind = None
                if on_count[t] >= 2:
                    kind = "crossing"
                else:
                    parent = int(np.nonzero(on_curves[t])[0][0])
                    if at_radius[t, parent] >= 2:
                        kind = "nearest-tie"
                    elif witness_count[t] >= 2:
                        kind = "witness-swap"
                    elif witness_count[t] == 1:
                        w = int(np.nonzero(witnesses[t])[0][0])
                        if at_radius[t, w] >= 2:
                            kind = "farthest-tie"
                if kind is not None:
                    accepted.append(((float(ctr[t, 0]), float(ctr[t, 1])),
                                     kind))
        self._dedupe(accepted)

    def _dedupe(self, accepted: List[Tuple[Point, str]]) -> None:
        """Merge repeated discoveries of the same vertex (grid + neighbors).

        The merge tolerance scales with the site spread (translation
        invariant), not the absolute coordinate magnitude.
        """
        spread = float(np.max(self._sites) - np.min(self._sites)) + 1.0
        merge = self.tol * spread
        inv = 1.0 / merge
        grid: Dict[Tuple[int, int], List[int]] = {}
        for p, kind in accepted:
            cx = math.floor(p[0] * inv)
            cy = math.floor(p[1] * inv)
            duplicate = False
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for vid in grid.get((cx + dx, cy + dy), ()):
                        v = self.vertices[vid]
                        if math.hypot(p[0] - v[0], p[1] - v[1]) <= merge:
                            duplicate = True
                            break
                    if duplicate:
                        break
                if duplicate:
                    break
            if not duplicate:
                grid.setdefault((cx, cy), []).append(len(self.vertices))
                self.vertices.append(p)
                self.vertex_kinds.append(kind)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Vertex count of ``V!=0`` — the Theorem 2.14 quantity."""
        return len(self.vertices)

    def vertex_census(self) -> Dict[str, int]:
        """Vertex counts by kind (crossing / nearest-tie / ...)."""
        out: Dict[str, int] = {}
        for kind in self.vertex_kinds:
            out[kind] = out.get(kind, 0) + 1
        return out

    # ------------------------------------------------------------------
    def delta(self, q: Point) -> float:
        """``Delta(q) = min_i max_site d(q, site)``."""
        return min(p.max_dist(q) for p in self.points)

    def nonzero_nn(self, q: Point) -> List[int]:
        """``NN!=0(q)`` by the Lemma 2.1 predicate on exact site distances."""
        from ..geometry.disks import nonzero_nn_indices

        return nonzero_nn_indices([p.min_dist(q) for p in self.points],
                                  [p.max_dist(q) for p in self.points])

    def dominance_polygon(self, i: int, j: int,
                          bound: float = 1e6) -> List[Point]:
        """``K_ij``: where ``P_j`` certainly excludes ``P_i`` (Lemma 2.13)."""
        return dominance_polygon(self.points[j], self.points[i], bound)
