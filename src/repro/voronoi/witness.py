"""Witness-disk solver: the vertex characterization of Theorem 2.5.

A (crossing) vertex of ``V!=0(P)`` is a point ``v`` where two curves
``gamma_i`` and ``gamma_j`` meet: the disk ``W = B(v, Delta(v))`` *touches*
``D_i`` and ``D_j`` from the outside, touches the witness disk ``D_u``
realizing ``Delta(v)`` from the inside, and properly contains no disk of
the family (proof of Theorem 2.5, cf. Figure 3 of the paper).

Dropping the global conditions, the candidate points for a fixed triple
``(i, j, u)`` satisfy::

    d(v, c_i) - d(v, c_u) = r_i + r_u      (delta_i(v) = Delta_u(v))
    d(v, c_j) - d(v, c_u) = r_j + r_u      (delta_j(v) = Delta_u(v))

— two hyperbola branches sharing the focus ``c_u``.  In polar coordinates
around ``c_u`` each is rational in ``cos/sin`` and equality reduces to one
linear trigonometric equation, so the at-most-two candidates (the "at most
two points v" of the paper's proof) come out in closed form.
"""

from __future__ import annotations

from typing import List, Sequence

from ..geometry.disks import Disk
from ..geometry.hyperbola import intersect_same_focus, witness_branch
from ..geometry.primitives import Point

__all__ = ["witness_candidates", "validate_vertex", "crossing_vertices_bruteforce"]


def witness_candidates(disk_i: Disk, disk_j: Disk, pivot: Disk) -> List[Point]:
    """Points with ``delta_i = delta_j = Delta_pivot`` (at most two).

    Pure local computation — no global minimality check; see
    :func:`validate_vertex` for the arrangement-level validation.
    """
    branch_i = witness_branch(disk_i, pivot)
    branch_j = witness_branch(disk_j, pivot)
    if branch_i is None or branch_j is None:
        return []
    out: List[Point] = []
    for theta in intersect_same_focus(branch_i, branch_j):
        out.append(branch_i.point_at(theta))
    return out


def validate_vertex(disks: Sequence[Disk], v: Point, i: int, j: int,
                    u: int, tol: float = 1e-7) -> bool:
    """Whether candidate *v* is a genuine crossing vertex of ``V!=0``.

    Checks the global part of the characterization: ``Delta_u(v)`` must be
    the minimum over all disks (equivalently, the witness disk
    ``B(v, Delta_u(v))`` properly contains no disk of the family).  The
    local tangency conditions hold by construction of the candidate.

    The tolerance scales with the witness radius so that the huge-coordinate
    lower-bound constructions (Theorem 2.7 uses disks of radius ``8 n^2``)
    validate as reliably as unit-scale inputs.
    """
    radius = disks[u].max_dist(v)
    band = tol * max(1.0, radius)
    for w, disk in enumerate(disks):
        if disk.max_dist(v) < radius - band:
            return False
    # Paranoia: check the defining equalities survived the arithmetic.
    if abs(disks[i].min_dist(v) - radius) > band:
        return False
    if abs(disks[j].min_dist(v) - radius) > band:
        return False
    return True


def crossing_vertices_bruteforce(disks: Sequence[Disk],
                                 tol: float = 1e-7) -> List[Point]:
    """All crossing vertices by exhaustive triple enumeration.

    ``O(n^3)`` candidate solves plus ``O(n)`` validation each — the
    reference implementation used by tests; the diagram builder batches the
    same computation with numpy (see
    :meth:`repro.voronoi.diagram.NonzeroVoronoiDiagram`).
    """
    out: List[Point] = []
    n = len(disks)
    for i in range(n):
        for j in range(i + 1, n):
            for u in range(n):
                if u == i or u == j:
                    continue
                for v in witness_candidates(disks[i], disks[j], disks[u]):
                    if validate_vertex(disks, v, i, j, u, tol):
                        out.append(v)
    return out
