"""The linearization of Section 2.2: distances as envelopes of planes.

Lemma 2.12's lifting replaces squared distances with *linear* functions:

    f(x, p) = d^2(x, p) - |x|^2 = |p|^2 - 2 <x, p>

For a discrete uncertain point ``P_i = {p_i1, ..., p_ik}``:

* ``phi_i(x)   = min_j f(x, p_ij)`` — a piecewise-linear *concave*
  surface (lower envelope of planes) encoding the nearest-site distance:
  ``delta_i(q) = r  iff  phi_i(q) = r^2 - |q|^2``;
* ``Phi_i(x)   = max_j f(x, p_ij)`` — a piecewise-linear *convex* surface
  (upper envelope) encoding the farthest-site distance the same way.

Theorem 3.2's data structures operate entirely on these surfaces; this
module provides their exact evaluation, the inverse transform back to
distances, and the Lemma 2.13 curve ``gamma_ij = {x : phi_i(x) = Phi_j(x)}``
(via the dominance polygons).  The tests verify both lemmas directly.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..geometry.convexhull import convex_hull
from ..geometry.primitives import Point
from ..uncertain.discrete import DiscreteUncertainPoint

__all__ = ["lift", "unlift", "LiftedSurfaces"]


def lift(x: Point, p: Point) -> float:
    """``f(x, p) = |p|^2 - 2 <x, p>`` (Eq. 5 of the paper)."""
    return (p[0] * p[0] + p[1] * p[1]
            - 2.0 * (x[0] * p[0] + x[1] * p[1]))


def unlift(value: float, x: Point) -> float:
    """Recover the distance: ``d = sqrt(value + |x|^2)`` (Lemma 2.12).

    Values can dip a hair below ``-|x|^2`` through rounding; clamped.
    """
    d2 = value + x[0] * x[0] + x[1] * x[1]
    return math.sqrt(max(d2, 0.0))


class LiftedSurfaces:
    """The ``phi_i`` / ``Phi_i`` surfaces of a family of discrete points.

    Evaluation uses the structure Theorem 3.2 exploits: ``Phi_i`` is the
    upper envelope of the planes of ``P_i``'s sites, and the maximizing
    plane always belongs to a *hull* vertex of the site set, so the
    evaluation scans hull vertices only (paralleling the farthest-point
    Voronoi structure of Section 2.2).
    """

    def __init__(self, points: Sequence[DiscreteUncertainPoint]) -> None:
        if not points:
            raise ValueError("need at least one uncertain point")
        self.points: List[DiscreteUncertainPoint] = list(points)
        self._hulls: List[List[Point]] = []
        for p in self.points:
            hull = convex_hull(p.points)
            self._hulls.append(hull if hull else list(p.points))

    # ------------------------------------------------------------------
    def phi(self, i: int, x: Point) -> float:
        """``phi_i(x) = min_j f(x, p_ij)`` (concave lower envelope)."""
        return min(lift(x, p) for p in self.points[i].points)

    def big_phi(self, i: int, x: Point) -> float:
        """``Phi_i(x) = max_j f(x, p_ij)`` via hull vertices only."""
        return max(lift(x, p) for p in self._hulls[i])

    def big_phi_envelope(self, x: Point) -> Tuple[int, float]:
        """``Phi(x) = min_i Phi_i(x)`` with its argmin (stage 1 of Thm 3.2)."""
        best = -1
        best_val = math.inf
        for i in range(len(self.points)):
            v = self.big_phi(i, x)
            if v < best_val:
                best_val = v
                best = i
        return best, best_val

    # ------------------------------------------------------------------
    def nonzero_nn(self, q: Point) -> List[int]:
        """``NN!=0(q)`` evaluated wholly in the lifted space.

        Lemma 2.12 makes ``delta_i(q) < Delta_j(q)`` equivalent to
        ``phi_i(q) < Phi_j(q)``, so the Lemma 2.1 predicate transfers
        verbatim (and the zero-extent ``j != i`` subtlety cannot arise for
        ``k >= 2`` sites in general position; for ``k = 1`` the lifted and
        unlifted predicates coincide, handled by the second-minimum rule).
        """
        from ..geometry.disks import nonzero_nn_indices

        mins = [self.phi(i, q) for i in range(len(self.points))]
        maxs = [self.big_phi(i, q) for i in range(len(self.points))]
        return nonzero_nn_indices(mins, maxs)

    def delta_via_lifting(self, q: Point) -> float:
        """``Delta(q)`` computed as ``unlift(Phi(q))`` — Lemma 2.12 check."""
        _, val = self.big_phi_envelope(q)
        return unlift(val, q)