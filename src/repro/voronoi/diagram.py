"""The nonzero Voronoi diagram ``V!=0(P)`` for disk uncertainty regions.

Theorem 2.5: ``V!=0(P)`` — the subdivision of the plane into maximal
regions with constant ``NN!=0`` — is the arrangement ``A(Gamma)`` of the
curves ``gamma_i`` and has ``O(n^3)`` complexity, computable in
``O(n^2 log n + mu)`` time.

Construction here follows the proof's two vertex types:

* **breakpoints** of each ``gamma_i`` (Lemma 2.2): corners where the
  envelope's minimizing branch ``gamma_ij`` swaps — the witness disk of
  ``Delta`` changes.  These come directly out of the polar envelopes.
* **crossings** of ``gamma_i`` with ``gamma_j``: for each witness ``u``,
  the at-most-two closed-form candidates of
  :mod:`repro.voronoi.witness`, validated against the global minimality of
  ``Delta_u``.  The proof of Theorem 2.5 shows every crossing arises this
  way ("the disk of radius Delta(v) centered at v touches D_i and D_j from
  the outside and another disk D_k ... from the inside").

The triple enumeration is batched with numpy: ``O(n^3)`` candidate solves
and an ``O(n)``-wide validation per candidate, all as array operations.

Edges and faces are then counted exactly from the vertex set: the vertices
incident to each ``gamma_i`` cut its connected components into edges, and
faces follow from Euler's relation on the one-point compactification (all
unbounded curve ends meet at a virtual vertex at infinity).  Tests verify
the counts against hand-computable configurations and against sampled
cell censuses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.disks import Disk
from ..geometry.primitives import TWO_PI, Point, angle_of, dist
from .gamma import GammaCurve, build_gamma_curves

__all__ = ["DiagramVertex", "NonzeroVoronoiDiagram"]


@dataclass
class DiagramVertex:
    """A vertex of ``V!=0(P)`` with its incidence metadata.

    ``on_curves`` maps a curve index ``i`` to the polar angle of the vertex
    around ``c_i`` (used to cut ``gamma_i`` into edges).  ``kind`` is
    ``"breakpoint"`` or ``"crossing"`` (a merged vertex keeps the first
    kind discovered; degeneracies where the two coincide are tolerated).
    """

    point: Point
    kind: str
    on_curves: Dict[int, float] = field(default_factory=dict)


class _VertexRegistry:
    """Grid-based vertex deduplication that merges incidence metadata."""

    def __init__(self, tol: float) -> None:
        self.tol = tol
        self._grid: Dict[Tuple[int, int], List[int]] = {}
        self.vertices: List[DiagramVertex] = []

    def add(self, p: Point, kind: str, incidences: Dict[int, float]) -> int:
        inv = 1.0 / self.tol
        cx = math.floor(p[0] * inv)
        cy = math.floor(p[1] * inv)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for vid in self._grid.get((cx + dx, cy + dy), ()):
                    v = self.vertices[vid]
                    if dist(p, v.point) <= self.tol:
                        v.on_curves.update(incidences)
                        return vid
        vid = len(self.vertices)
        self.vertices.append(DiagramVertex(p, kind, dict(incidences)))
        self._grid.setdefault((cx, cy), []).append(vid)
        return vid


class NonzeroVoronoiDiagram:
    """``V!=0`` of a family of disks, built per Theorem 2.5.

    Parameters
    ----------
    disks:
        The uncertainty regions (at least one).
    tol:
        Relative validation tolerance: ``Delta``-minimality of a candidate
        vertex is tested with a ``tol * witness_radius`` band.
    merge_tol:
        Absolute distance below which two discovered vertices are
        considered the same arrangement vertex.  Defaults to
        ``tol * coordinate_scale``; the huge-coordinate lower-bound
        constructions (Theorem 2.7 places disks at ``8 n^2``) pass an
        explicit value because their genuinely distinct vertices are only
        ``~1/n^2`` apart while coordinates are ``~n^2`` large.
    """

    def __init__(self, disks: Sequence[Disk], tol: float = 1e-7,
                 merge_tol: Optional[float] = None) -> None:
        if not disks:
            raise ValueError("diagram needs at least one disk")
        self.disks: List[Disk] = list(disks)
        self.tol = tol
        self._centers = np.array([[d.cx, d.cy] for d in self.disks])
        self._radii = np.array([d.r for d in self.disks])
        # The merge tolerance scales with the data *spread*, not the raw
        # coordinate magnitude: a diagram translated far from the origin
        # has the same geometry and must merge vertices identically.
        spread = float(np.max(self._centers, axis=0).max()
                       - np.min(self._centers, axis=0).min()) \
            + 2.0 * float(np.max(self._radii)) if len(self.disks) else 1.0
        self._merge_tol = merge_tol if merge_tol is not None \
            else tol * max(1.0, spread)
        self.gammas: List[GammaCurve] = build_gamma_curves(self.disks)
        self._registry = _VertexRegistry(self._merge_tol)
        self._collect_breakpoints()
        self._collect_crossings()
        self.vertices: List[DiagramVertex] = self._registry.vertices
        self._count_edges_faces()

    # ------------------------------------------------------------------
    # Vertex collection.
    # ------------------------------------------------------------------
    def _collect_breakpoints(self) -> None:
        for gamma in self.gammas:
            env = gamma.envelope
            for theta, left, _right in env.breakpoints():
                rho = left.radius(theta)
                if not math.isfinite(rho):
                    rho = env.radius((theta + 1e-12) % TWO_PI)
                c = gamma.disk.center
                p = (c[0] + rho * math.cos(theta), c[1] + rho * math.sin(theta))
                self._registry.add(p, "breakpoint", {gamma.index: theta})

    def _collect_crossings(self) -> None:
        n = len(self.disks)
        if n < 3:
            return
        centers = self._centers
        radii = self._radii
        # Pairwise quantities for the witness form around pivot u:
        #   s(theta) = num / (A cos + B sin + C),   A = 2*dx, B = 2*dy,
        #   C = 2*(r_m + r_u), num = D^2 - (r_m + r_u)^2,
        # where (dx, dy) = c_m - c_u and D = |c_m - c_u|.
        dxm = centers[:, 0][:, None] - centers[:, 0][None, :]
        dym = centers[:, 1][:, None] - centers[:, 1][None, :]
        dmat = np.hypot(dxm, dym)
        two_a = radii[:, None] + radii[None, :]
        exists = dmat > two_a * (1 + 1e-12) + 1e-12
        a_mat = 2.0 * dxm
        b_mat = 2.0 * dym
        c_mat = 2.0 * two_a
        num_mat = dmat * dmat - two_a * two_a

        # Enumerate triples (i < j, u != i, j) with both branches existing.
        pair_i, pair_j = np.triu_indices(n, k=1)
        p_count = len(pair_i)
        i_idx = np.repeat(pair_i, n)
        j_idx = np.repeat(pair_j, n)
        u_idx = np.tile(np.arange(n), p_count)
        keep = (u_idx != i_idx) & (u_idx != j_idx) \
            & exists[i_idx, u_idx] & exists[j_idx, u_idx]
        i_idx, j_idx, u_idx = i_idx[keep], j_idx[keep], u_idx[keep]
        if len(i_idx) == 0:
            return

        num_i = num_mat[i_idx, u_idx]
        num_j = num_mat[j_idx, u_idx]
        ab = num_i * a_mat[j_idx, u_idx] - num_j * a_mat[i_idx, u_idx]
        bb = num_i * b_mat[j_idx, u_idx] - num_j * b_mat[i_idx, u_idx]
        cb = num_i * c_mat[j_idx, u_idx] - num_j * c_mat[i_idx, u_idx]
        rr = np.hypot(ab, bb)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(rr > 0, -cb / rr, 2.0)
        solvable = np.abs(ratio) <= 1.0
        if not np.any(solvable):
            return
        i_idx, j_idx, u_idx = i_idx[solvable], j_idx[solvable], u_idx[solvable]
        alpha = np.arctan2(bb[solvable], ab[solvable])
        offset = np.arccos(np.clip(ratio[solvable], -1.0, 1.0))

        for sign in (+1.0, -1.0):
            theta = alpha + sign * offset
            cos_t = np.cos(theta)
            sin_t = np.sin(theta)
            denom = (a_mat[i_idx, u_idx] * cos_t
                     + b_mat[i_idx, u_idx] * sin_t + c_mat[i_idx, u_idx])
            ok = denom > 1e-12
            if not np.any(ok):
                continue
            s = num_mat[i_idx, u_idx][ok] / denom[ok]
            ii, jj, uu = i_idx[ok], j_idx[ok], u_idx[ok]
            px = centers[uu, 0] + s * cos_t[ok]
            py = centers[uu, 1] + s * sin_t[ok]
            # Global validation: Delta_u must attain the minimum.
            delta_u = s + radii[uu]
            d_all = np.hypot(px[:, None] - centers[None, :, 0],
                             py[:, None] - centers[None, :, 1])
            delta_min = np.min(d_all + radii[None, :], axis=1)
            band = self.tol * np.maximum(1.0, delta_u)
            valid = delta_u <= delta_min + band
            for t in np.nonzero(valid)[0]:
                p = (float(px[t]), float(py[t]))
                ci = self.disks[ii[t]].center
                cj = self.disks[jj[t]].center
                self._registry.add(
                    p, "crossing",
                    {int(ii[t]): angle_of((p[0] - ci[0], p[1] - ci[1])),
                     int(jj[t]): angle_of((p[0] - cj[0], p[1] - cj[1]))})

    # ------------------------------------------------------------------
    # Edge and face counting (Euler on the compactified plane).
    # ------------------------------------------------------------------
    def _count_edges_faces(self) -> None:
        n_vertices = len(self.vertices)
        # Union-find over vertices + virtual infinity node + synthetic nodes.
        parent: Dict[object, object] = {}

        def find(x: object) -> object:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: object, y: object) -> None:
            rx, ry = find(x), find(y)
            if rx != ry:
                parent[rx] = ry

        # Vertices per curve.
        on_curve: Dict[int, List[Tuple[float, int]]] = {}
        for vid, v in enumerate(self.vertices):
            for curve_idx, theta in v.on_curves.items():
                on_curve.setdefault(curve_idx, []).append((theta, vid))

        edges = 0
        synthetic = 0
        uses_infinity = False
        for gamma in self.gammas:
            runs = gamma.finite_runs()
            if not runs:
                continue
            angles = sorted(on_curve.get(gamma.index, []))
            closed = gamma.is_closed()
            for start, end in runs:
                members = [vid for theta, vid in angles
                           if _angle_in_run(theta, start, end)]
                if closed:
                    if not members:
                        # Smooth closed curve with no incident vertex:
                        # represent as one synthetic degree-2 vertex plus a
                        # self-loop edge so Euler's relation applies.
                        synthetic += 1
                        node = ("synthetic", gamma.index)
                        find(node)
                        edges += 1
                    else:
                        edges += len(members)
                        for a, b in zip(members, members[1:]):
                            union(a, b)
                else:
                    edges += len(members) + 1
                    uses_infinity = True
                    prev: object = "infinity"
                    for vid in members:
                        union(prev, vid)
                        prev = vid
                    union(prev, "infinity")

        for vid in range(n_vertices):
            find(vid)
        if uses_infinity:
            find("infinity")

        components = len({find(x) for x in parent})
        euler_vertices = n_vertices + synthetic + (1 if uses_infinity else 0)
        if edges == 0:
            faces = 1
        else:
            faces = 1 + components - euler_vertices + edges

        self.num_vertices = n_vertices + synthetic
        self.num_edges = edges
        self.num_faces = faces

    # ------------------------------------------------------------------
    # Queries and reporting.
    # ------------------------------------------------------------------
    @property
    def complexity(self) -> int:
        """Total complexity ``V + E + F`` (the paper's mu)."""
        return self.num_vertices + self.num_edges + self.num_faces

    def vertex_points(self) -> List[Point]:
        """Coordinates of all diagram vertices."""
        return [v.point for v in self.vertices]

    def crossing_vertices(self) -> List[DiagramVertex]:
        """Vertices where two distinct curves meet."""
        return [v for v in self.vertices if v.kind == "crossing"]

    def breakpoint_vertices(self) -> List[DiagramVertex]:
        """Envelope-corner vertices (Lemma 2.2 breakpoints)."""
        return [v for v in self.vertices if v.kind == "breakpoint"]

    def delta(self, q: Point) -> float:
        """``Delta(q) = min_i (d(q, c_i) + r_i)``."""
        return min(d.max_dist(q) for d in self.disks)

    def nonzero_nn(self, q: Point) -> List[int]:
        """``NN!=0(q)`` by the Lemma 2.1 predicate (O(n) evaluation)."""
        from ..geometry.disks import nonzero_nn_indices

        return nonzero_nn_indices([d.min_dist(q) for d in self.disks],
                                  [d.max_dist(q) for d in self.disks])

    def locate_cell(self, q: Point) -> FrozenSet[int]:
        """The label set ``P_phi`` of the cell containing *q*."""
        return frozenset(self.nonzero_nn(q))

    def sample_cell_census(self, samples: int = 2000,
                           margin: float = 2.0,
                           seed: int = 0) -> Dict[FrozenSet[int], int]:
        """Monte-Carlo census of cell label sets over a bounding window.

        Used by tests as a lower bound on the face count and by the
        persistence demo (E15) to enumerate reachable label sets.
        """
        import random as _random

        rng = _random.Random(seed)
        lo = self._centers.min(axis=0) - margin * (1 + self._radii.max())
        hi = self._centers.max(axis=0) + margin * (1 + self._radii.max())
        census: Dict[FrozenSet[int], int] = {}
        for _ in range(samples):
            q = (rng.uniform(lo[0], hi[0]), rng.uniform(lo[1], hi[1]))
            key = self.locate_cell(q)
            census[key] = census.get(key, 0) + 1
        return census


def _angle_in_run(theta: float, start: float, end: float) -> bool:
    """Whether angle *theta* falls inside a run ``[start, end]``.

    Runs produced by :meth:`GammaCurve.finite_runs` may extend past
    ``2*pi`` (wraparound); membership is tested against both ``theta`` and
    ``theta + 2*pi``.
    """
    slack = 1e-9
    if start - slack <= theta <= end + slack:
        return True
    shifted = theta + TWO_PI
    return start - slack <= shifted <= end + slack
