"""The guaranteed Voronoi diagram of [SE08] (discussed in Section 1.2).

The paper contrasts ``V!=0`` with the *guaranteed* Voronoi diagram: the
cells where a single uncertain point is certain to be the nearest neighbor
(``pi_i(q) = 1``).  For disk regions the guaranteed cell of ``P_i`` is

    G_i = {q : Delta_i(q) < delta_j(q)  for all j != i},

i.e. even the farthest possible position of ``P_i`` beats the nearest
possible position of everyone else.  [SE08] prove the *total* complexity
of these cells is ``O(n)`` — in sharp contrast to the ``Theta(n^3)`` of
``V!=0`` — which experiment E17 verifies empirically.

Geometry reuse: the boundary pieces ``{x : Delta_i(x) = delta_j(x)}`` are
the same hyperbola family as the ``gamma`` curves with the roles of the
two disks swapped — ``d(x, c_j) - d(x, c_i) = r_i + r_j``, the branch
closer to ``c_i`` — and a ray from ``c_i`` crosses each at most once, so
each guaranteed cell is star-shaped around its own center and is computed
by the very same polar lower-envelope machinery (Lemma 2.2's argument).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..geometry.disks import Disk
from ..geometry.envelopes import PiecewisePolarCurve, lower_envelope
from ..geometry.hyperbola import witness_branch
from ..geometry.primitives import Point, angle_of, dist

__all__ = ["GuaranteedVoronoi"]


class GuaranteedVoronoi:
    """Guaranteed-NN cells of a family of disks ([SE08]).

    ``cell(i)`` is the open region where ``P_i`` is the nearest neighbor
    with probability exactly 1; ``locate(q)`` returns its index or ``None``
    (most of the plane belongs to no guaranteed cell).
    """

    def __init__(self, disks: Sequence[Disk]) -> None:
        if not disks:
            raise ValueError("need at least one disk")
        self.disks: List[Disk] = list(disks)
        self._envelopes: List[PiecewisePolarCurve] = []
        for i, disk in enumerate(self.disks):
            branches = []
            for j, other in enumerate(self.disks):
                if j == i:
                    continue
                # {x : Delta_i(x) = delta_j(x)}: the hyperbola branch
                # d(x, c_j) - d(x, c_i) = r_i + r_j, polar around c_i —
                # exactly witness_branch with (moving=other, pivot=disk).
                branch = witness_branch(other, disk, label=j)
                if branch is None:
                    # Overlapping disks: delta_j(x) <= Delta_i(x) can fail
                    # everywhere... conservatively the guaranteed cell is
                    # empty whenever some other region overlaps this one,
                    # since then delta_j = 0 <= Delta_i at shared points;
                    # globally: Delta_i >= delta_j has no strict solution
                    # only if the branch is empty AND the disks overlap.
                    branches = None
                    break
                branches.append(branch)
            if branches is None:
                self._envelopes.append(_empty_envelope(disk.center))
            else:
                self._envelopes.append(
                    lower_envelope(disk.center, branches))

    # ------------------------------------------------------------------
    def contains(self, i: int, q: Point) -> bool:
        """Whether *q* lies in the guaranteed cell of ``P_i`` (envelope test)."""
        env = self._envelopes[i]
        c = self.disks[i].center
        rho = dist(q, c)
        theta = angle_of((q[0] - c[0], q[1] - c[1]))
        return rho < env.radius(theta)

    def contains_bruteforce(self, i: int, q: Point) -> bool:
        """Direct evaluation of the defining predicate."""
        big = self.disks[i].max_dist(q)
        return all(big < d.min_dist(q)
                   for j, d in enumerate(self.disks) if j != i)

    def locate(self, q: Point) -> Optional[int]:
        """Index of the guaranteed NN at *q*, or ``None``.

        Cells are disjoint (two points cannot both be certain winners), so
        at most one index matches.
        """
        for i in range(len(self.disks)):
            if self.contains(i, q):
                return i
        return None

    # ------------------------------------------------------------------
    def cell_complexity(self, i: int) -> int:
        """Number of arcs of the cell boundary of ``P_i``."""
        return self._envelopes[i].complexity()

    def total_complexity(self) -> int:
        """Total boundary arcs over all cells — [SE08]'s ``O(n)`` quantity."""
        return sum(env.complexity() for env in self._envelopes)

    def nonempty_cells(self) -> List[int]:
        """Indices whose guaranteed cell has nonempty interior.

        The cell of ``P_i`` always contains points sufficiently deep inside
        ``D_i``'s "private" zone when one exists; emptiness is detected via
        the envelope (positive radius in some direction iff nonempty, by
        star-shapedness).
        """
        out = []
        for i, env in enumerate(self._envelopes):
            if env.is_everywhere_infinite():
                # No constraint at all: whole plane (only possible n = 1).
                out.append(i)
                continue
            if any(a.curve is not None and
                   env.radius(a.midpoint) > 1e-100 for a in env.arcs):
                out.append(i)
        return out


def _empty_envelope(center: Point) -> PiecewisePolarCurve:
    """An envelope that is identically zero (empty star-shaped region)."""
    from ..geometry.envelopes import Arc
    from ..geometry.hyperbola import PolarHyperbola

    # A degenerate curve with radius ~0 in every direction.
    tiny = PolarHyperbola(center, 1e-300, 0.0, 0.0, 1.0)
    return PiecewisePolarCurve(center, [Arc(0.0, 2 * 3.141592653589793, tiny)])