"""The paper's explicit worst-case constructions (Theorems 2.7, 2.8, 2.10
and Lemma 4.1).

Each function reproduces the instance exactly as printed in the paper, with
the paper's parameter choices; the benchmarks build the corresponding
diagram and check the predicted vertex counts (or predicted coordinates,
for Theorem 2.10's fully explicit vertices).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..geometry.disks import Disk
from ..geometry.primitives import Point

__all__ = [
    "cubic_lower_bound_disks",
    "equal_radius_lower_bound_disks",
    "quadratic_lower_bound_disks",
    "quadratic_lower_bound_predicted_vertices",
    "quartic_vpr_sites",
]


def cubic_lower_bound_disks(m: int) -> List[Disk]:
    """Theorem 2.7 / Figure 5: ``Omega(n^3)`` instance with ``n = 4m`` disks.

    Parameters exactly as in the paper: ``R = 8 n^2``, ``omega = 1/n^2``;
    families ``D-`` and ``D+`` of ``m`` radius-``R`` disks each on the
    x-axis, and ``D0`` of ``2m`` unit disks on the y-axis.  Every triple
    ``(i, j, k)`` contributes two crossing vertices of ``V!=0``, for a
    total of at least ``2 * m * m * 2m = 4 m^3`` vertices.

    Returns the disks ordered ``D-_1..D-_m, D+_1..D+_m, D0_1..D0_{2m}``.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    n = 4 * m
    big_r = 8.0 * n * n
    omega = 1.0 / (n * n)
    disks: List[Disk] = []
    for i in range(1, m + 1):
        disks.append(Disk(-big_r - 1.5 - (i - 1) * omega, 0.0, big_r))
    for j in range(1, m + 1):
        disks.append(Disk(big_r + 1.5 + (j - 1) * omega, 0.0, big_r))
    for k in range(1, 2 * m + 1):
        disks.append(Disk(0.0, 4.0 * (k - m) - 2.0, 1.0))
    return disks


def equal_radius_lower_bound_disks(m: int,
                                   omega: float | None = None) -> List[Disk]:
    """Theorem 2.8 / Figure 6: ``Omega(n^3)`` with *equal* radii, ``n = 3m``.

    All disks have radius 1; ``theta = (pi/2) / (m + 1)``; ``omega`` must be
    "sufficiently small" (the paper leaves the constant open — we default
    to ``theta / (64 m)``, which the benchmark verifies is small enough).
    Families: ``D-_i`` at ``(-2 - (i-1) omega, 0)``, ``D+_j`` at
    ``(2 + (j-1) omega, 0)``, ``D0_k`` at ``(2 - 2 cos(k theta),
    2 sin(k theta))``.  Every triple ``(i, j, k)`` yields at least one
    vertex, for ``m^3`` total.

    Returns disks ordered ``D-_1..D-_m, D+_1..D+_m, D0_1..D0_m``.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    theta = (math.pi / 2.0) / (m + 1)
    if omega is None:
        omega = theta / (64.0 * m)
    disks: List[Disk] = []
    for i in range(1, m + 1):
        disks.append(Disk(-2.0 - (i - 1) * omega, 0.0, 1.0))
    for j in range(1, m + 1):
        disks.append(Disk(2.0 + (j - 1) * omega, 0.0, 1.0))
    for k in range(1, m + 1):
        disks.append(Disk(2.0 - 2.0 * math.cos(k * theta),
                          2.0 * math.sin(k * theta), 1.0))
    return disks


def quadratic_lower_bound_disks(m: int) -> List[Disk]:
    """Theorem 2.10: ``Omega(n^2)`` instance of pairwise-disjoint unit disks.

    ``n = 2m`` unit disks centered at ``c_i = (4(i - m) - 2, 0)`` for
    ``i = 1..2m`` — collinear with gaps of 2, so ``lambda = 1``.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    return [Disk(4.0 * (i - m) - 2.0, 0.0, 1.0) for i in range(1, 2 * m + 1)]


def quadratic_lower_bound_predicted_vertices(m: int) -> List[Point]:
    """The explicit vertex coordinates claimed in Theorem 2.10's proof.

    For every pair ``(i, j)`` with ``j - i >= 2``:

    * ``i + j`` even: ``v = (2(i + j - 2m - 1), ±((j - i)^2 - 1))``,
      realized with witness ``k = (i + j)/2``;
    * ``i + j`` odd:  ``v = (2(i + j - 2m - 1), ±(j - i) sqrt((j-i)^2 - 4))``,
      realized with ``k = floor/ceil((i + j)/2)``.

    The benchmark checks every predicted point coincides with a computed
    diagram vertex.  (For odd ``i + j`` the paper's formula requires
    ``j - i > 2``; at ``j - i = 2`` the two mirrored vertices merge on the
    x-axis, and we emit the single merged point.)
    """
    out: List[Point] = []
    for i in range(1, 2 * m + 1):
        for j in range(i + 2, 2 * m + 1):
            x = 2.0 * (i + j - 2 * m - 1)
            gap = j - i
            if (i + j) % 2 == 0:
                y = float(gap * gap - 1)
                out.extend([(x, y), (x, -y)])
            else:
                y = gap * math.sqrt(gap * gap - 4.0)
                if y == 0.0:
                    out.append((x, 0.0))
                else:
                    out.extend([(x, y), (x, -y)])
    return out


def quartic_vpr_sites(n: int, far_x: float = 100.0,
                      jitter: float = 1e-3,
                      seed: int = 7) -> List[Tuple[List[Point], List[float]]]:
    """Lemma 4.1: ``Omega(n^4)`` probabilistic-Voronoi instance with ``k = 2``.

    Each uncertain point has two equally likely sites: ``p_i`` inside the
    unit disk (chosen pseudo-randomly so that bisectors are in general
    position and intersect near the origin) and a far site near
    ``(far_x, 0)``.  The paper places all far sites at exactly the same
    point; we jitter them by ``i * jitter`` to stay in general position
    (the degenerate coincidence is only a simplification in the paper's
    proof, which notes the argument "can be generalized to a non-degenerate
    configuration").

    Returns ``[(sites, weights), ...]`` suitable for
    :class:`repro.uncertain.DiscreteUncertainPoint`.
    """
    import random as _random

    if n < 2:
        raise ValueError("n must be >= 2")
    rng = _random.Random(seed)
    out: List[Tuple[List[Point], List[float]]] = []
    for i in range(n):
        # Near sites: radii and angles varied irregularly so that no two
        # bisectors are parallel and triple points are avoided.
        radius = 0.35 + 0.3 * rng.random()
        angle = TWO_PI_FRACTION * (i + rng.random() * 0.35)
        near = (radius * math.cos(angle), radius * math.sin(angle))
        far = (far_x + i * jitter, i * jitter * 0.5)
        out.append(([near, far], [0.5, 0.5]))
    return out


#: Golden-angle style spacing used by :func:`quartic_vpr_sites`.
TWO_PI_FRACTION = 2.0 * math.pi * 0.381966011250105
