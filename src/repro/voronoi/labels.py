"""Persistent storage of per-cell label sets (Theorem 2.11).

Theorem 2.11 stores ``P_phi`` — the ``NN!=0`` label set of each cell of
``V!=0(P)`` — for *all* cells in ``O(mu)`` total space by exploiting that
adjacent cells differ in exactly one label (``|P_phi ⊕ P_phi'| = 1``): a
persistent set structure records one delta per adjacency instead of one
full set per cell.

:func:`persistent_label_field` demonstrates the theorem's space behaviour
on a rasterization of the diagram: a BFS over a query grid derives each
cell's label set from an already-visited neighbor whenever their symmetric
difference is a single label (crossing one edge of ``V!=0``), falling back
to a fresh root otherwise (e.g. when one grid step crosses several edges).
Experiment E15 compares the resulting space cost against explicit
per-cell storage.

The grid's label sets are computed by the vectorized
:class:`~repro.spatial.batch.BatchQueryEngine` over the support disks —
one batched ``NN!=0`` pass for the whole ``resolution x resolution``
raster instead of ``resolution^2`` scalar ``locate_cell`` calls.  The
engine's disk kernel evaluates the same Lemma 2.1 predicate with the same
``sqrt(dx^2+dy^2)`` distance form, so the rasterized sets are identical
to the scalar path's.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Tuple

from ..spatial.batch import BatchQueryEngine
from ..spatial.persistence import PersistentSetFamily
from .diagram import NonzeroVoronoiDiagram

__all__ = ["LabelFieldStats", "persistent_label_field"]


class LabelFieldStats:
    """Space accounting of a persistent vs. explicit label field.

    Attributes
    ----------
    persistent_cost:
        Total elements stored by the persistent family (root sizes plus one
        per single-label delta) — the Theorem 2.11 ``O(mu)`` quantity.
    explicit_cost:
        ``sum over grid cells of |label set|`` — the naive storage the
        theorem avoids.
    distinct_sets:
        Number of distinct label sets encountered (lower bound on the
        number of diagram cells intersecting the window).
    roots:
        How many BFS roots were needed (1 + number of grid adjacencies
        crossing more than one diagram edge at once).
    """

    def __init__(self, persistent_cost: int, explicit_cost: int,
                 distinct_sets: int, roots: int, cells: int) -> None:
        self.persistent_cost = persistent_cost
        self.explicit_cost = explicit_cost
        self.distinct_sets = distinct_sets
        self.roots = roots
        self.cells = cells

    @property
    def compression(self) -> float:
        """Explicit-to-persistent space ratio (higher = better)."""
        if self.persistent_cost == 0:
            return float("inf")
        return self.explicit_cost / self.persistent_cost


def persistent_label_field(diagram: NonzeroVoronoiDiagram,
                           resolution: int = 40,
                           margin: float = 1.5
                           ) -> Tuple[PersistentSetFamily, LabelFieldStats]:
    """Store the label sets of a grid rasterization persistently.

    The grid covers the disks' bounding box inflated by ``margin`` times
    the largest radius.  BFS order guarantees each non-root cell stores a
    single add/remove delta against a neighbor.
    """
    disks = diagram.disks
    xs = [d.cx for d in disks]
    ys = [d.cy for d in disks]
    pad = margin * (1.0 + max(d.r for d in disks))
    x0, x1 = min(xs) - pad, max(xs) + pad
    y0, y1 = min(ys) - pad, max(ys) + pad

    def cell_point(i: int, j: int) -> Tuple[float, float]:
        return (x0 + (i + 0.5) * (x1 - x0) / resolution,
                y0 + (j + 0.5) * (y1 - y0) / resolution)

    cells = [(i, j) for i in range(resolution) for j in range(resolution)]
    engine = BatchQueryEngine.from_disks(disks)
    answers = engine.nonzero_nn([cell_point(i, j) for i, j in cells])
    labels: Dict[Tuple[int, int], FrozenSet[int]] = {
        cell: frozenset(ans) for cell, ans in zip(cells, answers)}

    family = PersistentSetFamily()
    version: Dict[Tuple[int, int], int] = {}
    roots = 0
    explicit_cost = 0
    for start in labels:
        if start in version:
            continue
        roots += 1
        version[start] = family.create_root(labels[start])
        queue = deque([start])
        while queue:
            cell = queue.popleft()
            explicit_cost += len(labels[cell])
            ci, cj = cell
            for ni, nj in ((ci + 1, cj), (ci - 1, cj),
                           (ci, cj + 1), (ci, cj - 1)):
                nbr = (ni, nj)
                if nbr not in labels or nbr in version:
                    continue
                cur = labels[cell]
                nxt = labels[nbr]
                diff = cur ^ nxt
                if len(diff) == 1:
                    (elem,) = diff
                    if elem in nxt:
                        version[nbr] = family.derive_add(version[cell], elem)
                    else:
                        version[nbr] = family.derive_remove(version[cell], elem)
                    queue.append(nbr)
                elif len(diff) == 0:
                    # Same cell of V!=0: alias the parent's version.
                    version[nbr] = version[cell]
                    queue.append(nbr)
                # Multi-label jumps are left for a later BFS root.

    stats = LabelFieldStats(
        persistent_cost=family.space_cost(),
        explicit_cost=explicit_cost,
        distinct_sets=len(set(labels.values())),
        roots=roots,
        cells=resolution * resolution,
    )
    return family, stats
