"""The exact probabilistic Voronoi diagram ``V_Pr`` (Section 4.1).

Lemma 4.1: the ``O(N^2)`` perpendicular bisectors of all pairs of possible
site locations subdivide the plane into ``O(N^4)`` convex cells, inside
each of which the distance order to every site — and therefore every
quantification probability (Eq. 2) — is constant.  Theorem 4.2 preprocesses
this refinement for point location, answering exact quantification queries
in ``O(log N + t)``.

Construction: bisector lines are clipped to a bounding box (chosen to
contain the query region of interest plus every pairwise midpoint), the
box boundary is added, and the segment arrangement's bounded faces each get
their exact probability vector evaluated at an interior point.  Queries go
through the slab point locator; queries outside the box fall back to the
direct Eq. (2) sweep, preserving exactness everywhere.

Two construction pipelines produce **bitwise-identical** diagrams:

* ``build_mode="vector"`` (default) — pairwise bisector coefficients in one
  NumPy broadcast, normalized-key dedup via a stable ``unique``, the
  batched line-vs-box clip kernel, the vectorized arrangement build, and
  one :meth:`~repro.quantification.batch_exact.BatchExactQuantifier.
  quantification_vectors` call labeling every bounded face at once;
* ``build_mode="scalar"`` — the original pure-Python pair loops and
  per-face sweeps, retained as the reference oracle (and for duck-typed
  site models outside :class:`~repro.uncertain.discrete.
  DiscreteUncertainPoint`).

Benchmark E22 measures the build speedup (~an order of magnitude on one
core at tier-1-feasible sizes); ``tests/test_vectorized_kernels.py``
asserts identical V/E/F counts and bitwise-equal face vectors between the
two modes.

This structure is *meant* to be enormous — its ``Theta(N^4)`` size is the
paper's motivation for the approximation algorithms of Sections 4.2/4.3 —
so it is only practical for small instances, which is also all the
``Omega(n^4)`` lower-bound experiment (E10) needs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..geometry.primitives import Point
from ..geometry.seg_arrangement import SegmentArrangement
from ..geometry.segments import bisector_line, line_box_clip, \
    line_box_clip_batch
from ..obs.metrics import ENGINE
from ..quantification.batch_exact import BatchExactQuantifier
from ..quantification.exact_discrete import quantification_vector
from ..spatial.planelocate import PersistentPlaneLocator, plane_locate_scalar
from ..spatial.pointlocation import SlabPointLocator
from ..uncertain.discrete import DiscreteUncertainPoint

__all__ = ["LOCATORS", "ProbabilisticVoronoiDiagram", "SharedPlaneDiagram"]

#: Locator kinds accepted by the diagram (and ``ServiceConfig.locator``).
#: ``"auto"`` resolves to the output-sensitive merged-slab tree; the
#: quadratic slab table stays selectable as the bit-pinned oracle.
LOCATORS = ("auto", "slab", "persistent")

#: Version tag of the shared-plane array layout (``to_plane_arrays``).
PLANE_FORMAT_VERSION = 1

_Locator = Union[SlabPointLocator, PersistentPlaneLocator]


def resolve_locator(name: str = "auto") -> str:
    """The locator kind ``"auto"`` (or an explicit name) resolves to."""
    if name not in LOCATORS:
        raise ValueError(f"unknown locator {name!r}; "
                         f"expected one of {LOCATORS}")
    return "persistent" if name == "auto" else name


class ProbabilisticVoronoiDiagram:
    """Exact quantification-probability queries via the ``V_Pr`` refinement.

    Parameters
    ----------
    points:
        Discrete uncertain points (the exact diagram only exists for
        discrete distributions; Section 4.1).
    box:
        Optional ``((xmin, ymin), (xmax, ymax))`` query window.  Defaults
        to the bounding box of all sites, inflated by three quarters of the
        larger side of the cloud's extent (floored at 1 for degenerate
        clouds) — large enough to contain every bounded cell near the
        data, and *translation invariant*: a cloud far from the origin
        gets the same window shape as the same cloud at the origin.
        Queries outside the window remain exact via the fallback sweep.
    build_mode:
        ``"vector"`` (default) builds through the batched NumPy pipeline;
        ``"scalar"`` forces the pure-Python reference construction.  Both
        produce bitwise-identical face vectors and identical V/E/F counts.
    quantifier:
        Optional prebuilt :class:`~repro.quantification.batch_exact.
        BatchExactQuantifier` over *points*, reused for face labeling and
        batch queries (:meth:`PNNIndex.build_vpr
        <repro.core.index.PNNIndex.build_vpr>` passes its cached one).
    """

    def __init__(self, points: Sequence[DiscreteUncertainPoint],
                 box: Optional[Tuple[Point, Point]] = None,
                 build_mode: str = "vector",
                 quantifier: Optional[BatchExactQuantifier] = None,
                 locator: str = "auto") -> None:
        if not points:
            raise ValueError("need at least one uncertain point")
        if build_mode not in ("vector", "scalar"):
            raise ValueError(f"unknown build mode {build_mode!r}")
        self.locator_kind = resolve_locator(locator)
        ENGINE.inc("vpr.builds")
        t_build = time.perf_counter()
        self.points = list(points)
        self.build_mode = build_mode
        self._quantifier = quantifier
        sites: List[Point] = []
        for p in self.points:
            sites.extend(site for site, _ in p.sites_with_weights())
        self.total_sites = len(sites)

        if box is None:
            xs = [s[0] for s in sites]
            ys = [s[1] for s in sites]
            # Pad by the cloud's spread (max side of its bounding box),
            # floored at 1.0 for near-degenerate clouds.  The previous
            # heuristic mixed the raw coordinate ``xs[0]`` into the spread,
            # which blew the window up to the *distance from the origin*
            # for far-away clouds (a ~1000x larger arrangement for a cloud
            # at x = 1000) — see the far-cloud regression test.
            spread = max(1.0, max(xs) - min(xs), max(ys) - min(ys))
            pad = 0.75 * spread
            box = ((min(xs) - pad, min(ys) - pad),
                   (max(xs) + pad, max(ys) + pad))
        self.box = box

        (xmin, ymin), (xmax, ymax) = box
        boundary = [
            ((xmin, ymin), (xmax, ymin)),
            ((xmax, ymin), (xmax, ymax)),
            ((xmax, ymax), (xmin, ymax)),
            ((xmin, ymax), (xmin, ymin)),
        ]
        if build_mode == "scalar":
            segments = self._bisector_segments(sites, box)
            segments.extend(boundary)
            self.arrangement = SegmentArrangement(segments, mode="scalar")
        else:
            sx = np.array([s[0] for s in sites], dtype=np.float64)
            sy = np.array([s[1] for s in sites], dtype=np.float64)
            segs = self._bisector_segments_batch(sx, sy, box)
            rows = np.vstack([segs,
                              np.array([(a[0], a[1], b[0], b[1])
                                        for a, b in boundary])])
            self.arrangement = SegmentArrangement(rows, mode="vector")
        # The locator — the merged-slab tree by default, or the
        # Theta(V * S) slab table when ``locator="slab"`` — is built
        # lazily on first point location; only query workloads need it
        # (the complexity experiments E10/E17 never pay for it).
        self._locator: Optional[_Locator] = None

        areas = np.asarray(self.arrangement.face_areas)
        bounded = np.flatnonzero(areas > self.arrangement.tol)
        self._bounded_loops: List[int] = bounded.tolist()
        n = len(self.points)
        self._interior = self.arrangement.face_interior_array()
        # Batched face labeling needs the discrete batch engine; scalar
        # mode — and duck-typed site models outside DiscreteUncertainPoint
        # — label through the per-face scalar sweep (bitwise-identical
        # rows either way, per the PR-3 engine guarantee).
        if build_mode == "vector" and self._all_discrete() \
                and len(self._interior):
            self._face_matrix = self._exact_quantifier().matrix(
                self._interior)
        else:
            vectors = [quantification_vector(self.points, (x, y))
                       for x, y in self._interior.tolist()]
            self._face_matrix = np.asarray(vectors,
                                           dtype=np.float64).reshape(-1, n)
        # loop-id -> matrix-row map; the per-face dict views are lazy.
        self._loop_row = np.full(max(len(areas), 1), -1, dtype=np.intp)
        if len(bounded):
            self._loop_row[bounded] = np.arange(len(bounded))
        self._face_vectors_cache: Optional[Dict[int, List[float]]] = None
        self.build_seconds = time.perf_counter() - t_build

    @property
    def _face_vectors(self) -> Dict[int, List[float]]:
        """Per-face probability vectors (materialized from the matrix)."""
        if self._face_vectors_cache is None:
            self._face_vectors_cache = dict(
                zip(self._bounded_loops, self._face_matrix.tolist()))
        return self._face_vectors_cache

    @property
    def _face_reps(self) -> Dict[int, Point]:
        """One interior representative point per bounded face."""
        return dict(zip(self._bounded_loops,
                        map(tuple, self._interior.tolist())))

    # ------------------------------------------------------------------
    @property
    def locator(self) -> _Locator:
        """The Theorem 4.2 point-location structure (built on first use).

        Kind per ``locator_kind``: the output-sensitive
        :class:`~repro.spatial.planelocate.PersistentPlaneLocator`
        (``"persistent"``, the ``"auto"`` default) or the quadratic
        :class:`~repro.spatial.pointlocation.SlabPointLocator` oracle
        (``"slab"``); both answer bitwise identically.
        """
        if self._locator is None:
            if self.locator_kind == "slab":
                self._locator = SlabPointLocator(self.arrangement)
            else:
                self._locator = PersistentPlaneLocator(self.arrangement)
        return self._locator

    def locator_stats(self) -> Dict[str, object]:
        """The built locator's :meth:`stats` (builds it if needed)."""
        return self.locator.stats()

    def _all_discrete(self) -> bool:
        return all(isinstance(p, DiscreteUncertainPoint)
                   for p in self.points)

    def _exact_quantifier(self) -> BatchExactQuantifier:
        """The (lazily built, shareable) vectorized Eq. (2) engine."""
        if self._quantifier is None:
            self._quantifier = BatchExactQuantifier(self.points)
        return self._quantifier

    # ------------------------------------------------------------------
    @staticmethod
    def _bisector_segments(sites: List[Point],
                           box: Tuple[Point, Point]):
        """Clipped bisectors of all site pairs, deduplicated (scalar).

        The dedup key is the line's coefficient triple normalized by its
        max-abs component, rounded to 9 decimals via the shared
        ``round(v * 1e9) / 1e9`` form, and sign-canonicalized so that the
        first nonzero component is positive (two opposite-orientation
        triples describe the same line).  The batched path reproduces
        every step bitwise.
        """
        seen = set()
        segments = []
        m = len(sites)
        for a in range(m):
            for b in range(a + 1, m):
                p, r = sites[a], sites[b]
                if p == r:
                    continue  # coincident sites never swap distance order
                la, lb, lc = bisector_line(p, r)
                norm = max(abs(la), abs(lb), abs(lc), 1e-30)
                ka = round((la / norm) * 1e9) / 1e9 + 0.0
                kb = round((lb / norm) * 1e9) / 1e9 + 0.0
                kc = round((lc / norm) * 1e9) / 1e9 + 0.0
                if ka < 0 or (ka == 0 and
                              (kb < 0 or (kb == 0 and kc < 0))):
                    ka, kb, kc = -ka + 0.0, -kb + 0.0, -kc + 0.0
                key = (ka, kb, kc)
                if key in seen:
                    continue
                seen.add(key)
                clipped = line_box_clip(la, lb, lc, box)
                if clipped is not None:
                    segments.append(clipped)
        return segments

    @staticmethod
    def _bisector_segments_batch(sx: np.ndarray, sy: np.ndarray,
                                 box: Tuple[Point, Point]) -> np.ndarray:
        """Clipped bisectors of all site pairs, deduplicated (batched).

        One broadcast computes every pair's coefficients, a stable
        ``unique`` over the sign-canonicalized normalized keys keeps each
        line's first pair (the scalar scan order), and the batched clip
        kernel cuts the survivors to the box — returning an ``(S, 4)``
        segment array bit-for-bit equal to the scalar list.
        """
        pi, pj = np.triu_indices(len(sx), 1)
        px, py = sx[pi], sy[pi]
        rx, ry = sx[pj], sy[pj]
        distinct = (px != rx) | (py != ry)
        px, py, rx, ry = px[distinct], py[distinct], rx[distinct], ry[distinct]
        la = 2.0 * (rx - px)
        lb = 2.0 * (ry - py)
        lc = (rx * rx + ry * ry) - (px * px + py * py)
        norm = np.maximum(np.maximum(np.abs(la), np.abs(lb)),
                          np.maximum(np.abs(lc), 1e-30))
        ka = np.rint((la / norm) * 1e9) / 1e9 + 0.0
        kb = np.rint((lb / norm) * 1e9) / 1e9 + 0.0
        kc = np.rint((lc / norm) * 1e9) / 1e9 + 0.0
        flip = (ka < 0) | ((ka == 0) & ((kb < 0) | ((kb == 0) & (kc < 0))))
        sign = np.where(flip, -1.0, 1.0)
        ka = ka * sign + 0.0
        kb = kb * sign + 0.0
        kc = kc * sign + 0.0
        trip = np.ascontiguousarray(np.stack((ka, kb, kc), axis=1))
        keys = trip.view(np.dtype((np.void, trip.dtype.itemsize * 3)))
        _, first = np.unique(keys.ravel(), return_index=True)
        first.sort()
        segs, valid = line_box_clip_batch(la[first], lb[first], lc[first],
                                          box)
        return segs[valid]

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Arrangement vertices (grows like ``N^4`` — Lemma 4.1)."""
        return self.arrangement.num_vertices

    @property
    def num_faces(self) -> int:
        """Number of cells in the refinement within the window."""
        return self.arrangement.bounded_face_count()

    @property
    def complexity(self) -> int:
        """Total ``V + E + F`` of the clipped arrangement."""
        return self.arrangement.complexity

    def distinct_vectors(self, decimals: int = 9) -> int:
        """Number of distinct probability vectors over the cells.

        Lemma 4.1's lower-bound construction makes ``Omega(n^4)`` cells
        pairwise distinct; this counter is what experiment E10 reports.
        Counted in one vectorized pass: round the ``(F, n)`` face matrix,
        then count unique rows.
        """
        if not len(self._face_matrix):
            return 0
        scale = 10.0 ** decimals
        r = np.rint(self._face_matrix * scale) / scale + 0.0
        r = np.ascontiguousarray(r)
        rows = r.view(np.dtype((np.void, r.dtype.itemsize * r.shape[1])))
        return len(np.unique(rows.ravel()))

    # ------------------------------------------------------------------
    def query(self, q: Point) -> List[float]:
        """Exact ``(pi_1(q), ..., pi_n(q))``.

        ``O(log N + n)`` via point location inside the window (the vector
        is precomputed per cell); exact fallback sweep outside.
        """
        loop = self.locator.locate(q)
        if loop is not None:
            row = self._loop_row[loop]
            if row >= 0:
                return self._face_matrix[row].tolist()
        return quantification_vector(self.points, q)

    def query_batch(self, queries) -> np.ndarray:
        """:meth:`query` for an ``(m, 2)`` array, as an ``(m, n)`` matrix.

        One vectorized point-location pass gathers the precomputed face
        vectors; rows outside the window (or on unbounded slivers) are
        answered by the batched Eq. (2) sweep.  Row ``j`` equals
        ``query(queries[j])`` bitwise.
        """
        from ..spatial.batch import as_query_array

        q = as_query_array(queries)
        m = len(q)
        out = np.empty((m, len(self.points)), dtype=np.float64)
        locs = self.locator.locate_batch(q)
        safe = np.maximum(locs, 0)
        rows = np.where(locs >= 0, self._loop_row[safe], -1)
        known = rows >= 0
        if known.any():
            out[known] = self._face_matrix[rows[known]]
        missing = ~known
        if missing.any():
            if self._all_discrete():
                out[missing] = self._exact_quantifier().matrix(q[missing])
            else:
                # Duck-typed site models (scalar build mode): same exact
                # fallback the scalar query() uses, row by row.
                for j in np.flatnonzero(missing):
                    out[j] = quantification_vector(
                        self.points, (float(q[j, 0]), float(q[j, 1])))
        return out

    def quantify_batch(self, queries) -> List[Dict[int, float]]:
        """Sparse ``{i: pi_i(q)}`` dicts (zeros omitted), one per query.

        The serving container: the same ``row > 0`` filter as
        :meth:`~repro.quantification.batch_exact.BatchExactQuantifier.
        batch`, over :meth:`query_batch` rows — so wherever the float
        vectors agree with the direct Eq. (2) sweep (everywhere outside
        the window, and on every generic in-window query), the dicts are
        equal row for row.  This is what the ``quantify_vpr`` query kind
        serves.
        """
        mat = self.query_batch(queries)
        return [{int(i): float(row[i]) for i in np.flatnonzero(row > 0.0)}
                for row in mat]

    def positive_probabilities(self, q: Point,
                               tol: float = 0.0) -> Dict[int, float]:
        """The paper's query output: all ``(P_i, pi_i(q))`` with positive pi."""
        vec = self.query(q)
        return {i: v for i, v in enumerate(vec) if v > tol}

    # ------------------------------------------------------------------
    def to_plane_arrays(self) -> Dict[str, np.ndarray]:
        """The built ``V_Pr`` as flat arrays for shared-plane serving.

        Face quantification vectors plus the persistent locator's
        arrays, in the layout :func:`repro.spatial.codec.
        check_plane_arrays` validates — everything a
        :class:`SharedPlaneDiagram` needs to answer queries without
        rebuilding the diagram.  Raises
        :class:`~repro.spatial.codec.CodecUnsupported` when the diagram
        cannot be exported: non-discrete site models (no batched
        fallback engine on the far side) or a ``locator="slab"``
        diagram (the quadratic table is deliberately not shipped).
        """
        from ..spatial.codec import CodecUnsupported

        if not self._all_discrete():
            raise CodecUnsupported(
                "shared-plane serving requires discrete uncertain points")
        if self.locator_kind != "persistent":
            raise CodecUnsupported(
                "shared-plane serving requires the persistent locator "
                f"(this diagram was built with locator={self.locator_kind!r})")
        loc = self.locator
        assert isinstance(loc, PersistentPlaneLocator)
        ent_row = self._loop_row[loc.ent_loop].astype(np.int64)
        faces = np.ascontiguousarray(self._face_matrix, dtype=np.float64)
        meta = np.array([
            PLANE_FORMAT_VERSION, loc.leaf_base, len(self.points),
            max(len(loc._xs) - 1, 0), len(self.arrangement._vx),
            len(loc._ent_u), faces.shape[0]], dtype=np.int64)
        return {
            "meta": meta,
            "xs": np.ascontiguousarray(loc._xs, dtype=np.float64),
            "offs": np.ascontiguousarray(loc._offs, dtype=np.int64),
            "ent_u": np.ascontiguousarray(loc._ent_u, dtype=np.int64),
            "ent_v": np.ascontiguousarray(loc._ent_v, dtype=np.int64),
            "ent_row": np.ascontiguousarray(ent_row, dtype=np.int64),
            "vx": np.ascontiguousarray(self.arrangement._vx,
                                       dtype=np.float64),
            "vy": np.ascontiguousarray(self.arrangement._vy,
                                       dtype=np.float64),
            "faces": faces,
            "box": np.array(self.box, dtype=np.float64),
        }


class SharedPlaneDiagram:
    """A ``V_Pr`` served from pre-built plane arrays (attach, don't build).

    The parent process builds the diagram once, exports it with
    :meth:`ProbabilisticVoronoiDiagram.to_plane_arrays`, and ships the
    arrays to workers — pickled for the ``process`` backend, zero-copy
    through the shared-memory segment for ``shm``.  A worker wraps them
    in this class and answers the same ``query`` / ``query_batch`` /
    ``quantify_batch`` surface **bitwise identically**: in-window
    queries run the ``plane_locate`` kernel over the attached locator
    arrays and gather the precomputed face vectors; rows outside the
    window (or on unbounded slivers) fall back to the exact batched
    Eq. (2) sweep built from the worker's own points, exactly as the
    parent does.  The ``Theta(N^4)`` build cost is paid exactly once
    per serving process tree.
    """

    locator_kind = "persistent"

    def __init__(self, points: Sequence[DiscreteUncertainPoint],
                 arrays: Dict[str, np.ndarray], kernel: str = "auto",
                 quantifier: Optional[BatchExactQuantifier] = None) -> None:
        from ..spatial.codec import check_plane_arrays

        t0 = time.perf_counter()
        check_plane_arrays(arrays)
        meta = arrays["meta"]
        if int(meta[0]) != PLANE_FORMAT_VERSION:
            raise ValueError(
                f"plane format version {int(meta[0])} != "
                f"{PLANE_FORMAT_VERSION}")
        self.points = list(points)
        if int(meta[2]) != len(self.points):
            raise ValueError(
                f"plane was built over {int(meta[2])} uncertain points, "
                f"got {len(self.points)}")
        self.kernel = kernel
        self.leaf_base = int(meta[1])
        self._xs = arrays["xs"]
        self._offs = arrays["offs"]
        self._ent_u = arrays["ent_u"]
        self._ent_v = arrays["ent_v"]
        self._ent_row = arrays["ent_row"]
        self._vx = arrays["vx"]
        self._vy = arrays["vy"]
        self._face_matrix = arrays["faces"]
        b = arrays["box"]
        self.box = ((float(b[0, 0]), float(b[0, 1])),
                    (float(b[1, 0]), float(b[1, 1])))
        self._quantifier = quantifier
        ENGINE.inc("vpr.plane_attaches")
        self.attach_seconds = time.perf_counter() - t0

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vx)

    @property
    def num_faces(self) -> int:
        return int(self._face_matrix.shape[0])

    def locator_stats(self) -> Dict[str, object]:
        """Attached-plane figures, shaped like the locators' ``stats``."""
        nbytes = sum(int(a.nbytes) for a in (
            self._xs, self._offs, self._ent_u, self._ent_v, self._ent_row))
        return {
            "kind": "persistent",
            "entries": int(len(self._ent_u)),
            "slabs": int(max(len(self._xs) - 1, 0)),
            "leaf_base": int(self.leaf_base),
            "nbytes": nbytes,
            "attach_seconds": float(self.attach_seconds),
        }

    def _exact_quantifier(self) -> BatchExactQuantifier:
        if self._quantifier is None:
            self._quantifier = BatchExactQuantifier(self.points)
        return self._quantifier

    # ------------------------------------------------------------------
    def query(self, q: Point) -> List[float]:
        """Exact vector, bitwise the parent diagram's :meth:`query`."""
        ent = plane_locate_scalar(
            float(q[0]), float(q[1]), self._xs, self._offs,
            self._ent_u, self._ent_v, self._vx, self._vy, self.leaf_base)
        if ent >= 0:
            row = self._ent_row[ent]
            if row >= 0:
                return self._face_matrix[row].tolist()
        return quantification_vector(self.points, q)

    def query_batch(self, queries) -> np.ndarray:
        """Bitwise the parent diagram's :meth:`query_batch`."""
        from ..spatial.batch import as_query_array
        from ..spatial.kernels import get_provider

        q = as_query_array(queries)
        m = len(q)
        out = np.empty((m, len(self.points)), dtype=np.float64)
        rows = np.full(m, -1, dtype=np.intp)
        if m and len(self._xs) >= 2 and len(self._ent_u):
            ENGINE.inc("planelocate.batches")
            ent, found = get_provider(self.kernel).plane_locate(
                q[:, 0], q[:, 1], self._xs, self._offs,
                self._ent_u, self._ent_v, self._vx, self._vy,
                self.leaf_base)
            if found.any():
                rows[found] = self._ent_row[ent[found]]
        known = rows >= 0
        if known.any():
            out[known] = self._face_matrix[rows[known]]
        missing = ~known
        if missing.any():
            out[missing] = self._exact_quantifier().matrix(q[missing])
        return out

    def quantify_batch(self, queries) -> List[Dict[int, float]]:
        """Sparse serving dicts, bitwise the parent's."""
        mat = self.query_batch(queries)
        return [{int(i): float(row[i]) for i in np.flatnonzero(row > 0.0)}
                for row in mat]

    def positive_probabilities(self, q: Point,
                               tol: float = 0.0) -> Dict[int, float]:
        vec = self.query(q)
        return {i: v for i, v in enumerate(vec) if v > tol}
