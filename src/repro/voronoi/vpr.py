"""The exact probabilistic Voronoi diagram ``V_Pr`` (Section 4.1).

Lemma 4.1: the ``O(N^2)`` perpendicular bisectors of all pairs of possible
site locations subdivide the plane into ``O(N^4)`` convex cells, inside
each of which the distance order to every site — and therefore every
quantification probability (Eq. 2) — is constant.  Theorem 4.2 preprocesses
this refinement for point location, answering exact quantification queries
in ``O(log N + t)``.

Construction: bisector lines are clipped to a bounding box (chosen to
contain the query region of interest plus every pairwise midpoint), the
box boundary is added, and the segment arrangement's bounded faces each get
their exact probability vector evaluated at an interior point.  Queries go
through the slab point locator; queries outside the box fall back to the
direct Eq. (2) sweep, preserving exactness everywhere.

Two construction pipelines produce **bitwise-identical** diagrams:

* ``build_mode="vector"`` (default) — pairwise bisector coefficients in one
  NumPy broadcast, normalized-key dedup via a stable ``unique``, the
  batched line-vs-box clip kernel, the vectorized arrangement build, and
  one :meth:`~repro.quantification.batch_exact.BatchExactQuantifier.
  quantification_vectors` call labeling every bounded face at once;
* ``build_mode="scalar"`` — the original pure-Python pair loops and
  per-face sweeps, retained as the reference oracle (and for duck-typed
  site models outside :class:`~repro.uncertain.discrete.
  DiscreteUncertainPoint`).

Benchmark E22 measures the build speedup (~an order of magnitude on one
core at tier-1-feasible sizes); ``tests/test_vectorized_kernels.py``
asserts identical V/E/F counts and bitwise-equal face vectors between the
two modes.

This structure is *meant* to be enormous — its ``Theta(N^4)`` size is the
paper's motivation for the approximation algorithms of Sections 4.2/4.3 —
so it is only practical for small instances, which is also all the
``Omega(n^4)`` lower-bound experiment (E10) needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.primitives import Point
from ..geometry.seg_arrangement import SegmentArrangement
from ..geometry.segments import bisector_line, line_box_clip, \
    line_box_clip_batch
from ..quantification.batch_exact import BatchExactQuantifier
from ..quantification.exact_discrete import quantification_vector
from ..spatial.pointlocation import SlabPointLocator
from ..uncertain.discrete import DiscreteUncertainPoint

__all__ = ["ProbabilisticVoronoiDiagram"]


class ProbabilisticVoronoiDiagram:
    """Exact quantification-probability queries via the ``V_Pr`` refinement.

    Parameters
    ----------
    points:
        Discrete uncertain points (the exact diagram only exists for
        discrete distributions; Section 4.1).
    box:
        Optional ``((xmin, ymin), (xmax, ymax))`` query window.  Defaults
        to the bounding box of all sites, inflated by three quarters of the
        larger side of the cloud's extent (floored at 1 for degenerate
        clouds) — large enough to contain every bounded cell near the
        data, and *translation invariant*: a cloud far from the origin
        gets the same window shape as the same cloud at the origin.
        Queries outside the window remain exact via the fallback sweep.
    build_mode:
        ``"vector"`` (default) builds through the batched NumPy pipeline;
        ``"scalar"`` forces the pure-Python reference construction.  Both
        produce bitwise-identical face vectors and identical V/E/F counts.
    quantifier:
        Optional prebuilt :class:`~repro.quantification.batch_exact.
        BatchExactQuantifier` over *points*, reused for face labeling and
        batch queries (:meth:`PNNIndex.build_vpr
        <repro.core.index.PNNIndex.build_vpr>` passes its cached one).
    """

    def __init__(self, points: Sequence[DiscreteUncertainPoint],
                 box: Optional[Tuple[Point, Point]] = None,
                 build_mode: str = "vector",
                 quantifier: Optional[BatchExactQuantifier] = None) -> None:
        if not points:
            raise ValueError("need at least one uncertain point")
        if build_mode not in ("vector", "scalar"):
            raise ValueError(f"unknown build mode {build_mode!r}")
        self.points = list(points)
        self.build_mode = build_mode
        self._quantifier = quantifier
        sites: List[Point] = []
        for p in self.points:
            sites.extend(site for site, _ in p.sites_with_weights())
        self.total_sites = len(sites)

        if box is None:
            xs = [s[0] for s in sites]
            ys = [s[1] for s in sites]
            # Pad by the cloud's spread (max side of its bounding box),
            # floored at 1.0 for near-degenerate clouds.  The previous
            # heuristic mixed the raw coordinate ``xs[0]`` into the spread,
            # which blew the window up to the *distance from the origin*
            # for far-away clouds (a ~1000x larger arrangement for a cloud
            # at x = 1000) — see the far-cloud regression test.
            spread = max(1.0, max(xs) - min(xs), max(ys) - min(ys))
            pad = 0.75 * spread
            box = ((min(xs) - pad, min(ys) - pad),
                   (max(xs) + pad, max(ys) + pad))
        self.box = box

        (xmin, ymin), (xmax, ymax) = box
        boundary = [
            ((xmin, ymin), (xmax, ymin)),
            ((xmax, ymin), (xmax, ymax)),
            ((xmax, ymax), (xmin, ymax)),
            ((xmin, ymax), (xmin, ymin)),
        ]
        if build_mode == "scalar":
            segments = self._bisector_segments(sites, box)
            segments.extend(boundary)
            self.arrangement = SegmentArrangement(segments, mode="scalar")
        else:
            sx = np.array([s[0] for s in sites], dtype=np.float64)
            sy = np.array([s[1] for s in sites], dtype=np.float64)
            segs = self._bisector_segments_batch(sx, sy, box)
            rows = np.vstack([segs,
                              np.array([(a[0], a[1], b[0], b[1])
                                        for a, b in boundary])])
            self.arrangement = SegmentArrangement(rows, mode="vector")
        # The slab locator's size is Theta(V * S) — asymptotically the
        # heaviest part of the structure, and only query workloads need it
        # — so it is built lazily on first point location (the complexity
        # experiments E10/E17 never pay for it).
        self._locator: Optional[SlabPointLocator] = None

        areas = np.asarray(self.arrangement.face_areas)
        bounded = np.flatnonzero(areas > self.arrangement.tol)
        self._bounded_loops: List[int] = bounded.tolist()
        n = len(self.points)
        self._interior = self.arrangement.face_interior_array()
        # Batched face labeling needs the discrete batch engine; scalar
        # mode — and duck-typed site models outside DiscreteUncertainPoint
        # — label through the per-face scalar sweep (bitwise-identical
        # rows either way, per the PR-3 engine guarantee).
        if build_mode == "vector" and self._all_discrete() \
                and len(self._interior):
            self._face_matrix = self._exact_quantifier().matrix(
                self._interior)
        else:
            vectors = [quantification_vector(self.points, (x, y))
                       for x, y in self._interior.tolist()]
            self._face_matrix = np.asarray(vectors,
                                           dtype=np.float64).reshape(-1, n)
        # loop-id -> matrix-row map; the per-face dict views are lazy.
        self._loop_row = np.full(max(len(areas), 1), -1, dtype=np.intp)
        if len(bounded):
            self._loop_row[bounded] = np.arange(len(bounded))
        self._face_vectors_cache: Optional[Dict[int, List[float]]] = None

    @property
    def _face_vectors(self) -> Dict[int, List[float]]:
        """Per-face probability vectors (materialized from the matrix)."""
        if self._face_vectors_cache is None:
            self._face_vectors_cache = dict(
                zip(self._bounded_loops, self._face_matrix.tolist()))
        return self._face_vectors_cache

    @property
    def _face_reps(self) -> Dict[int, Point]:
        """One interior representative point per bounded face."""
        return dict(zip(self._bounded_loops,
                        map(tuple, self._interior.tolist())))

    # ------------------------------------------------------------------
    @property
    def locator(self) -> SlabPointLocator:
        """The Theorem 4.2 point-location structure (built on first use)."""
        if self._locator is None:
            self._locator = SlabPointLocator(self.arrangement)
        return self._locator

    def _all_discrete(self) -> bool:
        return all(isinstance(p, DiscreteUncertainPoint)
                   for p in self.points)

    def _exact_quantifier(self) -> BatchExactQuantifier:
        """The (lazily built, shareable) vectorized Eq. (2) engine."""
        if self._quantifier is None:
            self._quantifier = BatchExactQuantifier(self.points)
        return self._quantifier

    # ------------------------------------------------------------------
    @staticmethod
    def _bisector_segments(sites: List[Point],
                           box: Tuple[Point, Point]):
        """Clipped bisectors of all site pairs, deduplicated (scalar).

        The dedup key is the line's coefficient triple normalized by its
        max-abs component, rounded to 9 decimals via the shared
        ``round(v * 1e9) / 1e9`` form, and sign-canonicalized so that the
        first nonzero component is positive (two opposite-orientation
        triples describe the same line).  The batched path reproduces
        every step bitwise.
        """
        seen = set()
        segments = []
        m = len(sites)
        for a in range(m):
            for b in range(a + 1, m):
                p, r = sites[a], sites[b]
                if p == r:
                    continue  # coincident sites never swap distance order
                la, lb, lc = bisector_line(p, r)
                norm = max(abs(la), abs(lb), abs(lc), 1e-30)
                ka = round((la / norm) * 1e9) / 1e9 + 0.0
                kb = round((lb / norm) * 1e9) / 1e9 + 0.0
                kc = round((lc / norm) * 1e9) / 1e9 + 0.0
                if ka < 0 or (ka == 0 and
                              (kb < 0 or (kb == 0 and kc < 0))):
                    ka, kb, kc = -ka + 0.0, -kb + 0.0, -kc + 0.0
                key = (ka, kb, kc)
                if key in seen:
                    continue
                seen.add(key)
                clipped = line_box_clip(la, lb, lc, box)
                if clipped is not None:
                    segments.append(clipped)
        return segments

    @staticmethod
    def _bisector_segments_batch(sx: np.ndarray, sy: np.ndarray,
                                 box: Tuple[Point, Point]) -> np.ndarray:
        """Clipped bisectors of all site pairs, deduplicated (batched).

        One broadcast computes every pair's coefficients, a stable
        ``unique`` over the sign-canonicalized normalized keys keeps each
        line's first pair (the scalar scan order), and the batched clip
        kernel cuts the survivors to the box — returning an ``(S, 4)``
        segment array bit-for-bit equal to the scalar list.
        """
        pi, pj = np.triu_indices(len(sx), 1)
        px, py = sx[pi], sy[pi]
        rx, ry = sx[pj], sy[pj]
        distinct = (px != rx) | (py != ry)
        px, py, rx, ry = px[distinct], py[distinct], rx[distinct], ry[distinct]
        la = 2.0 * (rx - px)
        lb = 2.0 * (ry - py)
        lc = (rx * rx + ry * ry) - (px * px + py * py)
        norm = np.maximum(np.maximum(np.abs(la), np.abs(lb)),
                          np.maximum(np.abs(lc), 1e-30))
        ka = np.rint((la / norm) * 1e9) / 1e9 + 0.0
        kb = np.rint((lb / norm) * 1e9) / 1e9 + 0.0
        kc = np.rint((lc / norm) * 1e9) / 1e9 + 0.0
        flip = (ka < 0) | ((ka == 0) & ((kb < 0) | ((kb == 0) & (kc < 0))))
        sign = np.where(flip, -1.0, 1.0)
        ka = ka * sign + 0.0
        kb = kb * sign + 0.0
        kc = kc * sign + 0.0
        trip = np.ascontiguousarray(np.stack((ka, kb, kc), axis=1))
        keys = trip.view(np.dtype((np.void, trip.dtype.itemsize * 3)))
        _, first = np.unique(keys.ravel(), return_index=True)
        first.sort()
        segs, valid = line_box_clip_batch(la[first], lb[first], lc[first],
                                          box)
        return segs[valid]

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Arrangement vertices (grows like ``N^4`` — Lemma 4.1)."""
        return self.arrangement.num_vertices

    @property
    def num_faces(self) -> int:
        """Number of cells in the refinement within the window."""
        return self.arrangement.bounded_face_count()

    @property
    def complexity(self) -> int:
        """Total ``V + E + F`` of the clipped arrangement."""
        return self.arrangement.complexity

    def distinct_vectors(self, decimals: int = 9) -> int:
        """Number of distinct probability vectors over the cells.

        Lemma 4.1's lower-bound construction makes ``Omega(n^4)`` cells
        pairwise distinct; this counter is what experiment E10 reports.
        Counted in one vectorized pass: round the ``(F, n)`` face matrix,
        then count unique rows.
        """
        if not len(self._face_matrix):
            return 0
        scale = 10.0 ** decimals
        r = np.rint(self._face_matrix * scale) / scale + 0.0
        r = np.ascontiguousarray(r)
        rows = r.view(np.dtype((np.void, r.dtype.itemsize * r.shape[1])))
        return len(np.unique(rows.ravel()))

    # ------------------------------------------------------------------
    def query(self, q: Point) -> List[float]:
        """Exact ``(pi_1(q), ..., pi_n(q))``.

        ``O(log N + n)`` via point location inside the window (the vector
        is precomputed per cell); exact fallback sweep outside.
        """
        loop = self.locator.locate(q)
        if loop is not None:
            row = self._loop_row[loop]
            if row >= 0:
                return self._face_matrix[row].tolist()
        return quantification_vector(self.points, q)

    def query_batch(self, queries) -> np.ndarray:
        """:meth:`query` for an ``(m, 2)`` array, as an ``(m, n)`` matrix.

        One vectorized point-location pass gathers the precomputed face
        vectors; rows outside the window (or on unbounded slivers) are
        answered by the batched Eq. (2) sweep.  Row ``j`` equals
        ``query(queries[j])`` bitwise.
        """
        from ..spatial.batch import as_query_array

        q = as_query_array(queries)
        m = len(q)
        out = np.empty((m, len(self.points)), dtype=np.float64)
        locs = self.locator.locate_batch(q)
        safe = np.maximum(locs, 0)
        rows = np.where(locs >= 0, self._loop_row[safe], -1)
        known = rows >= 0
        if known.any():
            out[known] = self._face_matrix[rows[known]]
        missing = ~known
        if missing.any():
            if self._all_discrete():
                out[missing] = self._exact_quantifier().matrix(q[missing])
            else:
                # Duck-typed site models (scalar build mode): same exact
                # fallback the scalar query() uses, row by row.
                for j in np.flatnonzero(missing):
                    out[j] = quantification_vector(
                        self.points, (float(q[j, 0]), float(q[j, 1])))
        return out

    def quantify_batch(self, queries) -> List[Dict[int, float]]:
        """Sparse ``{i: pi_i(q)}`` dicts (zeros omitted), one per query.

        The serving container: the same ``row > 0`` filter as
        :meth:`~repro.quantification.batch_exact.BatchExactQuantifier.
        batch`, over :meth:`query_batch` rows — so wherever the float
        vectors agree with the direct Eq. (2) sweep (everywhere outside
        the window, and on every generic in-window query), the dicts are
        equal row for row.  This is what the ``quantify_vpr`` query kind
        serves.
        """
        mat = self.query_batch(queries)
        return [{int(i): float(row[i]) for i in np.flatnonzero(row > 0.0)}
                for row in mat]

    def positive_probabilities(self, q: Point,
                               tol: float = 0.0) -> Dict[int, float]:
        """The paper's query output: all ``(P_i, pi_i(q))`` with positive pi."""
        vec = self.query(q)
        return {i: v for i, v in enumerate(vec) if v > tol}
