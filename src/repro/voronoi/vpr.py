"""The exact probabilistic Voronoi diagram ``V_Pr`` (Section 4.1).

Lemma 4.1: the ``O(N^2)`` perpendicular bisectors of all pairs of possible
site locations subdivide the plane into ``O(N^4)`` convex cells, inside
each of which the distance order to every site — and therefore every
quantification probability (Eq. 2) — is constant.  Theorem 4.2 preprocesses
this refinement for point location, answering exact quantification queries
in ``O(log N + t)``.

Construction: bisector lines are clipped to a bounding box (chosen to
contain the query region of interest plus every pairwise midpoint), the
box boundary is added, and the segment arrangement's bounded faces each get
their exact probability vector evaluated at an interior point.  Queries go
through the slab point locator; queries outside the box fall back to the
direct Eq. (2) sweep, preserving exactness everywhere.

This structure is *meant* to be enormous — its ``Theta(N^4)`` size is the
paper's motivation for the approximation algorithms of Sections 4.2/4.3 —
so it is only practical for small instances, which is also all the
``Omega(n^4)`` lower-bound experiment (E10) needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry.primitives import Point
from ..geometry.seg_arrangement import SegmentArrangement
from ..geometry.segments import bisector_line, line_box_clip
from ..quantification.exact_discrete import quantification_vector
from ..spatial.pointlocation import SlabPointLocator
from ..uncertain.discrete import DiscreteUncertainPoint

__all__ = ["ProbabilisticVoronoiDiagram"]


class ProbabilisticVoronoiDiagram:
    """Exact quantification-probability queries via the ``V_Pr`` refinement.

    Parameters
    ----------
    points:
        Discrete uncertain points (the exact diagram only exists for
        discrete distributions; Section 4.1).
    box:
        Optional ``((xmin, ymin), (xmax, ymax))`` query window.  Defaults
        to the bounding box of all sites, inflated by half its diagonal —
        large enough to contain every bounded cell near the data.  Queries
        outside the window remain exact via the fallback sweep.
    """

    def __init__(self, points: Sequence[DiscreteUncertainPoint],
                 box: Optional[Tuple[Point, Point]] = None) -> None:
        if not points:
            raise ValueError("need at least one uncertain point")
        self.points = list(points)
        sites: List[Point] = []
        for p in self.points:
            sites.extend(site for site, _ in p.sites_with_weights())
        self.total_sites = len(sites)

        if box is None:
            xs = [s[0] for s in sites]
            ys = [s[1] for s in sites]
            spread = max(xs[0] + 1.0, max(xs) - min(xs), max(ys) - min(ys))
            pad = 0.75 * max(spread, 1.0)
            box = ((min(xs) - pad, min(ys) - pad),
                   (max(xs) + pad, max(ys) + pad))
        self.box = box

        segments = self._bisector_segments(sites, box)
        # Add the window boundary so bounded faces tile the whole window.
        (xmin, ymin), (xmax, ymax) = box
        segments.extend([
            ((xmin, ymin), (xmax, ymin)),
            ((xmax, ymin), (xmax, ymax)),
            ((xmax, ymax), (xmin, ymax)),
            ((xmin, ymax), (xmin, ymin)),
        ])
        self.arrangement = SegmentArrangement(segments)
        self.locator = SlabPointLocator(self.arrangement)
        self._face_vectors: Dict[int, List[float]] = {}
        self._face_reps: Dict[int, Point] = {}
        bounded = [idx for idx, area in enumerate(self.arrangement.face_areas)
                   if area > self.arrangement.tol]
        interior = self.arrangement.face_interior_points()
        for loop_idx, rep in zip(bounded, interior):
            self._face_reps[loop_idx] = rep
            self._face_vectors[loop_idx] = quantification_vector(
                self.points, rep)

    # ------------------------------------------------------------------
    @staticmethod
    def _bisector_segments(sites: List[Point],
                           box: Tuple[Point, Point]):
        """Clipped bisectors of all site pairs, deduplicated."""
        seen = set()
        segments = []
        m = len(sites)
        for a in range(m):
            for b in range(a + 1, m):
                p, r = sites[a], sites[b]
                if p == r:
                    continue  # coincident sites never swap distance order
                la, lb, lc = bisector_line(p, r)
                # Normalize the line key for deduplication.
                norm = max(abs(la), abs(lb), abs(lc), 1e-30)
                key = (round(la / norm, 9), round(lb / norm, 9),
                       round(lc / norm, 9))
                key_neg = tuple(-v for v in key)
                if key in seen or key_neg in seen:
                    continue
                seen.add(key)
                clipped = line_box_clip(la, lb, lc, box)
                if clipped is not None:
                    segments.append(clipped)
        return segments

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Arrangement vertices (grows like ``N^4`` — Lemma 4.1)."""
        return self.arrangement.num_vertices

    @property
    def num_faces(self) -> int:
        """Number of cells in the refinement within the window."""
        return self.arrangement.bounded_face_count()

    @property
    def complexity(self) -> int:
        """Total ``V + E + F`` of the clipped arrangement."""
        return self.arrangement.complexity

    def distinct_vectors(self, decimals: int = 9) -> int:
        """Number of distinct probability vectors over the cells.

        Lemma 4.1's lower-bound construction makes ``Omega(n^4)`` cells
        pairwise distinct; this counter is what experiment E10 reports.
        """
        seen = {tuple(round(v, decimals) for v in vec)
                for vec in self._face_vectors.values()}
        return len(seen)

    # ------------------------------------------------------------------
    def query(self, q: Point) -> List[float]:
        """Exact ``(pi_1(q), ..., pi_n(q))``.

        ``O(log N + n)`` via point location inside the window (the vector
        is precomputed per cell); exact fallback sweep outside.
        """
        loop = self.locator.locate(q)
        if loop is not None and loop in self._face_vectors:
            return list(self._face_vectors[loop])
        return quantification_vector(self.points, q)

    def positive_probabilities(self, q: Point,
                               tol: float = 0.0) -> Dict[int, float]:
        """The paper's query output: all ``(P_i, pi_i(q))`` with positive pi."""
        vec = self.query(q)
        return {i: v for i, v in enumerate(vec) if v > tol}
