"""The curves ``gamma_i`` bounding the nonzero-NN regions (Lemma 2.2).

``gamma_i = {x : delta_i(x) = Delta(x)}`` separates the region where ``P_i``
has nonzero probability of being the nearest neighbor (``delta_i < Delta``)
from the region where it has none.  Lemma 2.2 shows ``gamma_i`` is the lower
envelope, in polar coordinates around ``c_i``, of the hyperbola branches
``gamma_ij`` — each pair of which crosses at most twice — so the envelope
has at most ``2n`` breakpoints and is computable in ``O(n log n)``.

This module assembles exactly that: one :class:`GammaCurve` per uncertain
point, wrapping the generic polar-envelope machinery with the paper's
region semantics (star-shapedness of ``R_i`` around ``c_i``).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..geometry.disks import Disk
from ..geometry.envelopes import PiecewisePolarCurve, lower_envelope
from ..geometry.hyperbola import gamma_branch
from ..geometry.primitives import TWO_PI, Point, angle_of, dist

__all__ = ["GammaCurve", "build_gamma_curves"]


class GammaCurve:
    """The boundary curve of ``R_i = {x : delta_i(x) < Delta(x)}``.

    ``R_i`` is star-shaped around ``c_i`` (each ray crosses each
    ``gamma_ij`` at most once), so membership is a single envelope lookup:
    ``x in R_i  iff  |x - c_i| < envelope(angle(x - c_i))``.
    """

    def __init__(self, index: int, disk: Disk,
                 envelope: PiecewisePolarCurve) -> None:
        self.index = index
        self.disk = disk
        self.envelope = envelope

    # ------------------------------------------------------------------
    def radius(self, theta: float) -> float:
        """Envelope value: distance from ``c_i`` to the curve at *theta*."""
        return self.envelope.radius(theta)

    def contains(self, q: Point, tol: float = 0.0) -> bool:
        """Whether *q* lies in the open region ``R_i`` (Lemma 2.1 test)."""
        c = self.disk.center
        rho = dist(q, c)
        theta = angle_of((q[0] - c[0], q[1] - c[1]))
        return rho < self.envelope.radius(theta) - tol

    def breakpoints(self) -> List[Tuple[float, int, int]]:
        """``(theta, j_left, j_right)``: the witness swap angles of Lemma 2.2.

        ``j_left`` / ``j_right`` are the indices of the disks whose
        ``gamma_ij`` attains the envelope before and after the breakpoint.
        """
        out = []
        for theta, left, right in self.envelope.breakpoints():
            out.append((theta, left.label, right.label))
        return out

    def breakpoint_count(self) -> int:
        """Number of breakpoints (Lemma 2.2 bounds this by ``2n``)."""
        return len(self.envelope.breakpoints())

    def breakpoint_points(self) -> List[Point]:
        """Cartesian coordinates of the breakpoints."""
        return self.envelope.breakpoint_points()

    def is_empty(self) -> bool:
        """Whether ``gamma_i`` is empty (``R_i`` is the whole plane).

        Happens iff no ``gamma_ij`` exists, i.e. ``D_i`` intersects every
        other disk — then ``delta_i < Delta_j`` everywhere for all ``j``.
        """
        return self.envelope.is_everywhere_infinite()

    def is_closed(self) -> bool:
        """Whether the curve surrounds ``R_i`` completely (no unbounded gap)."""
        return not self.is_empty() and \
            all(a.curve is not None for a in self.envelope.arcs)

    # ------------------------------------------------------------------
    def finite_runs(self) -> List[Tuple[float, float]]:
        """Maximal angular intervals on which the curve exists.

        Consecutive finite arcs are merged; a run wrapping through
        ``theta = 0`` is reported as a single interval with
        ``end = start_raw + width`` possibly exceeding ``2*pi``.  Each run
        is one connected component of ``gamma_i`` (an unbounded arc, unless
        the curve is closed — then the single run covers the full circle).
        """
        arcs = self.envelope.arcs
        runs: List[Tuple[float, float]] = []
        cur_start: Optional[float] = None
        for arc in arcs:
            if arc.curve is not None:
                if cur_start is None:
                    cur_start = arc.start
            else:
                if cur_start is not None:
                    runs.append((cur_start, arc.start))
                    cur_start = None
        if cur_start is not None:
            runs.append((cur_start, TWO_PI))
        if not runs:
            return []
        # Merge a run ending at 2*pi with one starting at 0 (wraparound).
        if len(runs) >= 2 and runs[0][0] <= 1e-12 \
                and abs(runs[-1][1] - TWO_PI) <= 1e-12:
            first = runs.pop(0)
            last = runs.pop()
            runs.append((last[0], TWO_PI + first[1]))
        return runs

    def sample_points(self, count: int = 256) -> List[Point]:
        """Points along the curve for visualization/testing (finite only)."""
        pts: List[Point] = []
        for start, end in self.finite_runs():
            steps = max(2, int(count * (end - start) / TWO_PI))
            for s in range(steps + 1):
                theta = (start + (end - start) * s / steps) % TWO_PI
                rho = self.envelope.radius(theta)
                if math.isfinite(rho):
                    c = self.disk.center
                    pts.append((c[0] + rho * math.cos(theta),
                                c[1] + rho * math.sin(theta)))
        return pts


def build_gamma_curves(disks: Sequence[Disk]) -> List[GammaCurve]:
    """Construct ``gamma_i`` for every disk: the Lemma 2.2 computation.

    For each ``i``, the branches ``gamma_ij`` for all ``j != i`` (skipping
    overlapping disks, whose branch is empty) are fed to the generic polar
    lower-envelope; total work ``O(n^2 log n)`` as in Theorem 2.5.
    """
    curves: List[GammaCurve] = []
    for i, disk in enumerate(disks):
        branches = []
        for j, other in enumerate(disks):
            if j == i:
                continue
            branch = gamma_branch(disk, other, label=j)
            if branch is not None:
                branches.append(branch)
        envelope = lower_envelope(disk.center, branches)
        curves.append(GammaCurve(i, disk, envelope))
    return curves
