"""Nonzero Voronoi diagrams (continuous and discrete), the paper's
worst-case constructions, and the exact probabilistic Voronoi diagram."""

from .constructions import (
    cubic_lower_bound_disks,
    equal_radius_lower_bound_disks,
    quadratic_lower_bound_disks,
    quadratic_lower_bound_predicted_vertices,
    quartic_vpr_sites,
)
from .diagram import DiagramVertex, NonzeroVoronoiDiagram
from .discrete_diagram import DiscreteNonzeroVoronoi, dominance_polygon
from .gamma import GammaCurve, build_gamma_curves
from .guaranteed import GuaranteedVoronoi
from .labels import LabelFieldStats, persistent_label_field
from .lifting import LiftedSurfaces, lift, unlift
from .vpr import ProbabilisticVoronoiDiagram
from .witness import (
    crossing_vertices_bruteforce,
    validate_vertex,
    witness_candidates,
)

__all__ = [
    "DiagramVertex",
    "DiscreteNonzeroVoronoi",
    "GammaCurve",
    "GuaranteedVoronoi",
    "LabelFieldStats",
    "LiftedSurfaces",
    "NonzeroVoronoiDiagram",
    "ProbabilisticVoronoiDiagram",
    "build_gamma_curves",
    "crossing_vertices_bruteforce",
    "cubic_lower_bound_disks",
    "dominance_polygon",
    "persistent_label_field",
    "lift",
    "unlift",
    "equal_radius_lower_bound_disks",
    "quadratic_lower_bound_disks",
    "quadratic_lower_bound_predicted_vertices",
    "quartic_vpr_sites",
    "validate_vertex",
    "witness_candidates",
]
