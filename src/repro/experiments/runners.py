"""Experiment runners: one per reproduced table/figure/theorem.

Each runner regenerates the empirical content behind a paper artifact
(E1–E15, see DESIGN.md §3) and returns an :class:`ExperimentResult` with
the measured rows plus a pass/fail conclusion against the paper's claim.
Benchmarks (``benchmarks/``) time the hot kernels of the same runners;
``python -m repro.experiments`` renders all results into EXPERIMENTS.md.

Runners accept a ``quick`` flag: ``quick=True`` shrinks the sweeps for use
inside the benchmark harness; the defaults are sized for the full
EXPERIMENTS.md regeneration (a few minutes total).
"""

from __future__ import annotations

import math
import random
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from ..core.index import PNNIndex
from ..core.workloads import (
    disjoint_disks,
    random_discrete_points,
    random_disks,
)
from ..geometry.disks import Disk
from ..quantification.exact_continuous import quantification_continuous_vector
from ..quantification.exact_discrete import quantification_vector
from ..quantification.monte_carlo import (
    MonteCarloQuantifier,
    discretize_continuous,
    rounds_for_single_query,
)
from ..quantification.spiral import SpiralSearchQuantifier, remark_eta_comparison
from ..uncertain.discrete import DiscreteUncertainPoint
from ..uncertain.disk_uniform import DiskUniformPoint
from ..voronoi.constructions import (
    cubic_lower_bound_disks,
    equal_radius_lower_bound_disks,
    quadratic_lower_bound_disks,
    quadratic_lower_bound_predicted_vertices,
    quartic_vpr_sites,
)
from ..voronoi.diagram import NonzeroVoronoiDiagram
from ..voronoi.discrete_diagram import DiscreteNonzeroVoronoi
from ..voronoi.gamma import build_gamma_curves
from ..voronoi.labels import persistent_label_field
from ..voronoi.vpr import ProbabilisticVoronoiDiagram

__all__ = ["ExperimentResult", "REGISTRY", "run_all"]


@dataclass
class ExperimentResult:
    """Outcome of one reproduction experiment."""

    exp_id: str
    title: str
    paper_claim: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    conclusion: str = ""
    passed: bool = True


def _fit_exponent(xs: List[float], ys: List[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    mx = statistics.fmean(lx)
    my = statistics.fmean(ly)
    num = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    den = sum((a - mx) ** 2 for a in lx)
    return num / den if den else 0.0


# ----------------------------------------------------------------------
# E1 — Figure 1(b): the distance pdf of a uniform disk.
# ----------------------------------------------------------------------

def run_e01(quick: bool = False) -> ExperimentResult:
    """Figure 1: ``g_{q,i}`` for ``D((0,0), 5)`` and ``q = (6, 8)``."""
    point = DiskUniformPoint((0.0, 0.0), 5.0)
    q = (6.0, 8.0)
    samples = 20_000 if quick else 200_000
    rng = random.Random(1)
    draws = sorted(math.dist(point.sample(rng), q) for _ in range(samples))
    rows: List[Dict[str, object]] = []
    rs = [5.5 + 0.5 * t for t in range(19)]
    worst = 0.0
    for r in rs:
        analytic = point.distance_pdf(q, r)
        h = 0.05
        lo = np.searchsorted(draws, r - h)
        hi = np.searchsorted(draws, r + h)
        empirical = (hi - lo) / (samples * 2 * h)
        worst = max(worst, abs(analytic - empirical))
        rows.append({"r": r, "g_analytic": round(analytic, 5),
                     "g_sampled": round(empirical, 5)})
    support_ok = point.distance_pdf(q, 4.99) == 0.0 \
        and point.distance_pdf(q, 15.01) == 0.0
    grid = np.linspace(5, 15, 4001)
    mass = float(np.trapezoid([point.distance_pdf(q, r) for r in grid], grid))
    passed = support_ok and abs(mass - 1.0) < 1e-3 and worst < 0.02
    return ExperimentResult(
        "E1", "Figure 1(b): distance pdf of a uniform disk",
        "g_{q,i} supported on [d-R, d+R] = [5, 15], unimodal, integrates to 1",
        rows,
        f"support [5,15] respected={support_ok}, integral={mass:.5f}, "
        f"max |analytic - sampled| = {worst:.4f}",
        passed)


# ----------------------------------------------------------------------
# E2 — Lemma 2.2: breakpoints of gamma_i.
# ----------------------------------------------------------------------

def run_e02(quick: bool = False) -> ExperimentResult:
    """Lemma 2.2: each ``gamma_i`` has at most ``2n`` breakpoints."""
    sizes = [8, 16] if quick else [8, 16, 32, 64, 128]
    rows = []
    passed = True
    for n in sizes:
        disks = random_disks(n, seed=n)
        start = time.perf_counter()
        curves = build_gamma_curves(disks)
        elapsed = time.perf_counter() - start
        worst = max(c.breakpoint_count() for c in curves)
        total = sum(c.breakpoint_count() for c in curves)
        passed &= worst <= 2 * n
        rows.append({"n": n, "max breakpoints": worst, "bound 2n": 2 * n,
                     "total": total, "build_s": round(elapsed, 4)})
    return ExperimentResult(
        "E2", "Lemma 2.2: gamma_i breakpoint bound",
        "every gamma_i has <= 2n breakpoints, built in O(n log n) each",
        rows,
        f"bound respected on all sizes: {passed}", passed)


# ----------------------------------------------------------------------
# E3 — Theorem 2.5: V!=0 complexity on random inputs.
# ----------------------------------------------------------------------

def run_e03(quick: bool = False) -> ExperimentResult:
    """Theorem 2.5: ``V!=0`` has O(n^3) complexity; random-input growth."""
    sizes = [8, 16] if quick else [8, 12, 16, 24, 32, 48]
    rows = []
    vs = []
    for n in sizes:
        disks = random_disks(n, seed=10 + n, r_min=0.3, r_max=1.2)
        start = time.perf_counter()
        diagram = NonzeroVoronoiDiagram(disks)
        elapsed = time.perf_counter() - start
        vs.append(max(diagram.num_vertices, 1))
        rows.append({"n": n, "V": diagram.num_vertices,
                     "E": diagram.num_edges, "F": diagram.num_faces,
                     "mu=V+E+F": diagram.complexity,
                     "n^3": n ** 3, "build_s": round(elapsed, 3)})
    exponent = _fit_exponent([float(s) for s in sizes], [float(v) for v in vs])
    passed = exponent <= 3.2  # upper bound; random inputs are usually ~2
    return ExperimentResult(
        "E3", "Theorem 2.5: V!=0 complexity, random disks",
        "V!=0 has O(n^3) complexity (tight only for adversarial inputs)",
        rows,
        f"log-log growth exponent on random inputs: {exponent:.2f} "
        f"(<= 3 as claimed; the cubic bound is attained by E4/E5)", passed)


# ----------------------------------------------------------------------
# E4 — Theorem 2.7: Omega(n^3) lower-bound construction.
# ----------------------------------------------------------------------

def run_e04(quick: bool = False) -> ExperimentResult:
    """Theorem 2.7: the two-radius construction has >= 4 m^3 vertices."""
    ms = [2] if quick else [2, 3, 4]
    rows = []
    passed = True
    for m in ms:
        disks = cubic_lower_bound_disks(m)
        n = len(disks)
        start = time.perf_counter()
        diagram = NonzeroVoronoiDiagram(disks, merge_tol=1e-9)
        elapsed = time.perf_counter() - start
        # Crossings pairing one D- curve with one D+ curve: the triples the
        # proof counts (two vertices per (i, j, k)).
        cross_pairs = 0
        for v in diagram.crossing_vertices():
            idxs = sorted(v.on_curves)
            if any(a < m <= b < 2 * m for a in idxs for b in idxs):
                cross_pairs += 1
        predicted = 4 * m ** 3
        ok = cross_pairs >= predicted
        passed &= ok
        rows.append({"m": m, "n": n, "paired crossings": cross_pairs,
                     "predicted 4m^3": predicted, "total V": diagram.num_vertices,
                     "n^3/16": n ** 3 // 16, "build_s": round(elapsed, 3),
                     "ok": ok})
    return ExperimentResult(
        "E4", "Theorem 2.7 / Figure 5: Omega(n^3) construction",
        "each triple (i, j, k) contributes 2 vertices: >= 4 m^3 = n^3/16 "
        "crossings between D- and D+ curves",
        rows, f"predicted counts reached at every m: {passed}", passed)


# ----------------------------------------------------------------------
# E5 — Theorem 2.8: equal-radius Omega(n^3) construction.
# ----------------------------------------------------------------------

def run_e05(quick: bool = False) -> ExperimentResult:
    """Theorem 2.8: equal radii still force ``m^3`` vertices."""
    ms = [3] if quick else [3, 4, 5, 6]
    rows = []
    passed = True
    for m in ms:
        disks = equal_radius_lower_bound_disks(m)
        n = len(disks)
        start = time.perf_counter()
        diagram = NonzeroVoronoiDiagram(disks, merge_tol=1e-10)
        elapsed = time.perf_counter() - start
        cross_pairs = 0
        for v in diagram.crossing_vertices():
            idxs = sorted(v.on_curves)
            if any(a < m <= b < 2 * m for a in idxs for b in idxs):
                cross_pairs += 1
        predicted = m ** 3
        ok = cross_pairs >= predicted
        passed &= ok
        rows.append({"m": m, "n": n, "paired crossings": cross_pairs,
                     "predicted m^3": predicted,
                     "total V": diagram.num_vertices,
                     "build_s": round(elapsed, 3), "ok": ok})
    return ExperimentResult(
        "E5", "Theorem 2.8 / Figure 6: equal-radius Omega(n^3)",
        "every triple (i, j, k) yields a vertex: >= m^3 = (n/3)^3 crossings",
        rows, f"predicted counts reached at every m: {passed}", passed)


# ----------------------------------------------------------------------
# E6 — Theorem 2.10: disjoint disks, radius ratio lambda.
# ----------------------------------------------------------------------

def run_e06(quick: bool = False) -> ExperimentResult:
    """Theorem 2.10: O(lambda n^2) upper bound and Omega(n^2) witnesses."""
    rows = []
    passed = True
    # Part 1: the explicit Omega(n^2) instance — predicted vertices found.
    for m in ([3] if quick else [3, 4, 5, 6]):
        disks = quadratic_lower_bound_disks(m)
        diagram = NonzeroVoronoiDiagram(disks)
        predicted = quadratic_lower_bound_predicted_vertices(m)
        verts = diagram.vertex_points()
        missing = sum(
            1 for p in predicted
            if not any(math.dist(p, v) <= 1e-5 for v in verts))
        ok = missing == 0
        passed &= ok
        rows.append({"part": "Omega(n^2) instance", "m": m, "n": 2 * m,
                     "predicted": len(predicted), "missing": missing,
                     "V": diagram.num_vertices, "ok": ok})
    # Part 2: lambda sweep at fixed n — growth should be ~linear in lambda.
    n = 16 if quick else 36
    lam_vs = []
    lams = [1.0, 2.0] if quick else [1.0, 2.0, 4.0, 8.0]
    for lam in lams:
        disks = disjoint_disks(n, ratio=lam, seed=5)
        diagram = NonzeroVoronoiDiagram(disks)
        lam_vs.append(max(diagram.num_vertices, 1))
        rows.append({"part": "lambda sweep", "n": n, "lambda": lam,
                     "V": diagram.num_vertices,
                     "lambda*n^2": int(lam * n * n)})
    return ExperimentResult(
        "E6", "Theorem 2.10: disjoint disks with bounded radius ratio",
        "complexity O(lambda n^2); explicit collinear instance realizes "
        "Omega(n^2) with vertices at the stated coordinates",
        rows,
        f"all predicted Omega(n^2) vertices found: {passed}; "
        f"V stays well below lambda*n^2 across the sweep", passed)


# ----------------------------------------------------------------------
# E7 — Theorem 2.14: discrete-case V!=0 complexity.
# ----------------------------------------------------------------------

def run_e07(quick: bool = False) -> ExperimentResult:
    """Theorem 2.14: ``V!=0`` has O(k n^3) vertices for discrete points."""
    combos = [(6, 2), (6, 3)] if quick else [(6, 2), (9, 2), (12, 2),
                                             (6, 3), (9, 3), (6, 4)]
    rows = []
    ratios = []
    for n, k in combos:
        pts = random_discrete_points(n, k, seed=n * 10 + k, spread=1.5)
        start = time.perf_counter()
        diagram = DiscreteNonzeroVoronoi(pts)
        elapsed = time.perf_counter() - start
        bound = k * n ** 3
        ratios.append(diagram.num_vertices / bound)
        rows.append({"n": n, "k": k, "V": diagram.num_vertices,
                     "bound k*n^3": bound,
                     "V/bound": round(diagram.num_vertices / bound, 3),
                     "build_s": round(elapsed, 3)})
    passed = all(r <= 1.0 for r in ratios)
    return ExperimentResult(
        "E7", "Theorem 2.14: discrete-case V!=0 vertex count",
        "O(k n^3) vertices; each vertex is a circumcenter of a site triple",
        rows,
        f"V/(k n^3) stays below 1 on all instances: {passed} "
        f"(max ratio {max(ratios):.3f})", passed)


# ----------------------------------------------------------------------
# E8 — Theorem 3.1: continuous NN!=0 query time.
# ----------------------------------------------------------------------

def run_e08(quick: bool = False) -> ExperimentResult:
    """Theorem 3.1: near-logarithmic NN!=0 queries vs. linear brute force."""
    sizes = [1000, 4000] if quick else [1000, 4000, 16000, 64000]
    queries = 200
    rows = []
    speedups = []
    batch_ok = True
    for n in sizes:
        extent = math.sqrt(n) * 2.0  # constant density
        disks = random_disks(n, seed=n, extent=extent, r_min=0.1, r_max=0.4)
        pts = [DiskUniformPoint(d.center, d.r) for d in disks]
        index = PNNIndex(pts)
        rng = random.Random(99)
        qs = [(rng.uniform(0, extent), rng.uniform(0, extent))
              for _ in range(queries)]
        start = time.perf_counter()
        outs = [index.nonzero_nn(q) for q in qs]
        fast = (time.perf_counter() - start) / queries
        start = time.perf_counter()
        brute = [index.nonzero_nn_bruteforce(q) for q in qs]
        slow = (time.perf_counter() - start) / queries
        assert all(a == sorted(b) for a, b in zip(outs, brute))
        index.batch_nonzero_nn(qs[:4])  # build the engine outside the timer
        start = time.perf_counter()
        batched = index.batch_nonzero_nn(qs)
        per_batched = (time.perf_counter() - start) / queries
        batch_ok &= batched == outs
        t_avg = statistics.fmean(len(o) for o in outs)
        speedups.append(slow / fast)
        rows.append({"n": n, "query_us": round(fast * 1e6, 1),
                     "brute_us": round(slow * 1e6, 1),
                     "speedup": round(slow / fast, 1),
                     "batch_us": round(per_batched * 1e6, 1),
                     "batch_x": round(fast / per_batched, 1),
                     "avg output t": round(t_avg, 2)})
    passed = speedups[-1] > speedups[0] and speedups[-1] > 3.0 and batch_ok
    return ExperimentResult(
        "E8", "Theorem 3.1: two-stage continuous NN!=0 queries",
        "O(log n + t) query (vs Theta(n) brute force) with near-linear space",
        rows,
        f"speedup grows with n ({speedups[0]:.1f}x -> {speedups[-1]:.1f}x): "
        f"consistent with logarithmic-vs-linear scaling; batch engine "
        f"agrees on every query: {batch_ok}", passed)


# ----------------------------------------------------------------------
# E9 — Theorem 3.2: discrete NN!=0 query time.
# ----------------------------------------------------------------------

def run_e09(quick: bool = False) -> ExperimentResult:
    """Theorem 3.2: sublinear NN!=0 queries for discrete distributions."""
    sizes = [500, 2000] if quick else [500, 2000, 8000, 32000]
    k = 4
    queries = 150
    rows = []
    speedups = []
    batch_ok = True
    for n in sizes:
        extent = math.sqrt(n) * 2.0
        pts = random_discrete_points(n, k, seed=n, extent=extent, spread=0.3)
        index = PNNIndex(pts)
        rng = random.Random(7)
        qs = [(rng.uniform(0, extent), rng.uniform(0, extent))
              for _ in range(queries)]
        start = time.perf_counter()
        outs = [index.nonzero_nn(q) for q in qs]
        fast = (time.perf_counter() - start) / queries
        start = time.perf_counter()
        brute = [index.nonzero_nn_bruteforce(q) for q in qs]
        slow = (time.perf_counter() - start) / queries
        assert all(a == sorted(b) for a, b in zip(outs, brute))
        index.batch_nonzero_nn(qs[:4])
        start = time.perf_counter()
        batched = index.batch_nonzero_nn(qs)
        per_batched = (time.perf_counter() - start) / queries
        batch_ok &= batched == outs
        speedups.append(slow / fast)
        rows.append({"n": n, "N=nk": n * k,
                     "query_us": round(fast * 1e6, 1),
                     "brute_us": round(slow * 1e6, 1),
                     "speedup": round(slow / fast, 1),
                     "batch_us": round(per_batched * 1e6, 1),
                     "batch_x": round(fast / per_batched, 1)})
    passed = speedups[-1] > speedups[0] and speedups[-1] > 3.0 and batch_ok
    return ExperimentResult(
        "E9", "Theorem 3.2: two-stage discrete NN!=0 queries",
        "sublinear query in N = nk (paper: O(sqrt(N) polylog + t))",
        rows,
        f"speedup grows with N ({speedups[0]:.1f}x -> {speedups[-1]:.1f}x); "
        f"batch engine agrees on every query: {batch_ok}",
        passed)


# ----------------------------------------------------------------------
# E10 — Lemma 4.1 / Theorem 4.2: the exact V_Pr diagram.
# ----------------------------------------------------------------------

def run_e10(quick: bool = False) -> ExperimentResult:
    """Lemma 4.1: ``V_Pr`` grows like N^4; k=2 instance with distinct cells.

    Routed through :meth:`PNNIndex.build_vpr`'s vectorized pipeline (the
    batched bisector/arrangement/labeling path of benchmark E22 — bitwise
    identical to the scalar reference), recording the build wall-time per
    size alongside the complexity counts; the ``Theta(N^4)`` growth
    assertions are unchanged.
    """
    rows = []
    ns = [3, 4] if quick else [3, 4, 5, 6]
    faces = []
    big_ns = []
    for n in ns:
        pts = [DiscreteUncertainPoint(s, w) for s, w in quartic_vpr_sites(n)]
        index = PNNIndex(pts)
        start = time.perf_counter()
        vpr = index.build_vpr(build_mode="vector")
        elapsed = time.perf_counter() - start
        faces.append(max(vpr.num_faces, 1))
        big_ns.append(2 * n)
        rows.append({"n": n, "N=2n": 2 * n, "V": vpr.num_vertices,
                     "cells": vpr.num_faces,
                     "distinct vectors": vpr.distinct_vectors(),
                     "n^4": n ** 4, "build_s": round(elapsed, 3)})
    exponent = _fit_exponent([float(x) for x in ns], [float(f) for f in faces])
    # The construction concentrates Theta(n^4) cells near the unit disk:
    # growth exponent should approach 4.
    passed = exponent >= 3.0
    return ExperimentResult(
        "E10", "Lemma 4.1 / Theorem 4.2: exact probabilistic Voronoi diagram",
        "V_Pr has Theta(N^4) worst-case complexity (k = 2 instance)",
        rows,
        f"cell-count growth exponent in n: {exponent:.2f} "
        f"(theory: -> 4 asymptotically); vectorized build "
        f"{rows[-1]['build_s']}s at n={ns[-1]}", passed)


# ----------------------------------------------------------------------
# E11 — Theorem 4.3: Monte-Carlo estimator, discrete case.
# ----------------------------------------------------------------------

def run_e11(quick: bool = False) -> ExperimentResult:
    """Theorem 4.3: ±eps with the prescribed number of rounds."""
    n, k = (12, 3)
    pts = random_discrete_points(n, k, seed=3, spread=2.0)
    rng = random.Random(17)
    queries = [(rng.uniform(0, 10), rng.uniform(0, 10))
               for _ in range(10 if quick else 40)]
    exact = {q: quantification_vector(pts, q) for q in queries}
    rows = []
    passed = True
    epsilons = [0.2, 0.1] if quick else [0.2, 0.1, 0.05, 0.025]
    delta = 0.05
    exact_mat = np.array([exact[q] for q in queries])
    for eps in epsilons:
        s = rounds_for_single_query(eps, delta, n)
        mc = MonteCarloQuantifier(pts, epsilon=eps, delta=delta, seed=23)
        # One vectorized counting pass over all queries x rounds.
        est_mat = mc.estimate_matrix(queries)
        errs = np.abs(est_mat - exact_mat).max(axis=1)
        worst = float(errs.max())
        violations = int((errs > eps).sum())
        frac_ok = 1.0 - violations / len(queries)
        ok = frac_ok >= 1.0 - delta
        passed &= ok
        rows.append({"eps": eps, "rounds s": s, "max error": round(worst, 4),
                     "queries within eps": f"{frac_ok:.0%}", "ok": ok})
    return ExperimentResult(
        "E11", "Theorem 4.3: Monte-Carlo quantification (discrete)",
        "s = O(eps^-2 log(N/delta)) rounds give |pi_hat - pi| <= eps "
        "w.p. >= 1 - delta",
        rows, f"error bound satisfied at every eps: {passed}", passed)


# ----------------------------------------------------------------------
# E12 — Theorem 4.5: Monte-Carlo for continuous pdfs.
# ----------------------------------------------------------------------

def run_e12(quick: bool = False) -> ExperimentResult:
    """Theorem 4.5: continuous -> discrete reduction preserves ±eps."""
    pts = [DiskUniformPoint((0, 0), 1.2), DiskUniformPoint((2.5, 0.4), 1.0),
           DiskUniformPoint((1.0, 2.2), 0.8), DiskUniformPoint((3.4, 2.6), 1.1)]
    rng = random.Random(5)
    queries = [(rng.uniform(-0.5, 4.0), rng.uniform(-0.5, 3.2))
               for _ in range(4 if quick else 12)]
    truth = {q: quantification_continuous_vector(pts, q) for q in queries}
    rows = []
    passed = True
    surrogate_sizes = [16, 64] if quick else [16, 64, 256]
    for k_s in surrogate_sizes:
        surrogate = [discretize_continuous(p, k_s, seed=i)
                     for i, p in enumerate(pts)]
        worst_bias = 0.0
        for q in queries:
            approx = quantification_vector(surrogate, q)
            worst_bias = max(worst_bias, max(
                abs(a - b) for a, b in zip(approx, truth[q])))
        rows.append({"stage": "discretization only", "k(alpha)": k_s,
                     "max bias": round(worst_bias, 4)})
        # End-to-end: Monte-Carlo over the surrogates, all queries in one
        # vectorized counting pass.
        eps = 0.1
        mc = MonteCarloQuantifier(surrogate, epsilon=eps, delta=0.05, seed=11)
        est_mat = mc.estimate_matrix(queries)
        truth_mat = np.array([truth[q] for q in queries])
        worst = float(np.abs(est_mat - truth_mat).max())
        ok = worst <= eps + worst_bias + 0.02
        passed &= ok
        rows.append({"stage": "surrogate + MC (eps=0.1)", "k(alpha)": k_s,
                     "max bias": round(worst, 4)})
    biases = [r["max bias"] for r in rows if r["stage"] == "discretization only"]
    monotone = all(b1 >= b2 - 0.01 for b1, b2 in zip(biases, biases[1:]))
    passed &= monotone
    return ExperimentResult(
        "E12", "Theorem 4.5: Monte-Carlo quantification (continuous)",
        "sampling each pdf into k(alpha) sites biases pi by <= n*alpha "
        "(Lemma 4.4); MC on the surrogate then achieves ±eps",
        rows,
        f"bias shrinks with surrogate size and end-to-end error stays "
        f"within eps + bias: {passed}", passed)


# ----------------------------------------------------------------------
# E13 — Theorem 4.7: spiral search.
# ----------------------------------------------------------------------

def run_e13(quick: bool = False) -> ExperimentResult:
    """Theorem 4.7: one-sided ±eps from m(rho, eps) nearest sites."""
    rows = []
    passed = True
    spreads = [1.0, 4.0] if quick else [1.0, 2.0, 8.0]
    n, k = (12, 3) if quick else (40, 4)
    for wr in spreads:
        pts = random_discrete_points(n, k, seed=31, weight_ratio=wr,
                                     extent=20.0)
        spiral = SpiralSearchQuantifier(pts)
        rng = random.Random(41)
        queries = [(rng.uniform(0, 20), rng.uniform(0, 20))
                   for _ in range(10 if quick else 30)]
        for eps in ([0.1] if quick else [0.2, 0.05]):
            m = spiral.m_for(eps)
            worst_low = 0.0   # pi_hat must not exceed pi
            worst_high = 0.0  # pi - pi_hat must stay <= eps
            for q in queries:
                est = spiral.estimate_vector(q, eps)
                exact = quantification_vector(pts, q)
                for a, b in zip(est, exact):
                    worst_low = max(worst_low, a - b)
                    worst_high = max(worst_high, b - a)
            ok = worst_low <= 1e-9 and worst_high <= eps + 1e-9
            passed &= ok
            rows.append({"weight ratio": wr, "rho": round(spiral.rho, 2),
                         "eps": eps, "m(rho,eps)": m, "N": spiral.total_sites,
                         "max pi_hat - pi": f"{worst_low:.2e}",
                         "max pi - pi_hat": round(worst_high, 4), "ok": ok})
    return ExperimentResult(
        "E13", "Theorem 4.7: spiral-search quantification",
        "retrieving m(rho, eps) = rho k ln(1/eps) + k - 1 nearest sites "
        "gives pi_hat <= pi <= pi_hat + eps",
        rows, f"one-sided eps guarantee held everywhere: {passed}", passed)


# ----------------------------------------------------------------------
# E14 — Section 4.3 Remark (i): the small-weight adversarial example.
# ----------------------------------------------------------------------

def run_e14(quick: bool = False) -> ExperimentResult:
    """Remark (i): dropping small-weight sites flips the NN ranking."""
    eps = 0.01
    vals = remark_eta_comparison(eps)
    rows = [
        {"quantity": "eta(p1)", "value": round(vals["eta_p1"], 5),
         "paper": f"= 3 eps = {3 * eps}"},
        {"quantity": "eta(p2) true", "value": round(vals["eta_p2_true"], 5),
         "paper": f"< 2 eps = {2 * eps}"},
        {"quantity": "eta(p2) small weights dropped",
         "value": round(vals["eta_p2_dropped"], 5),
         "paper": f"> 4 eps = {4 * eps}"},
    ]
    passed = (abs(vals["eta_p1"] - 3 * eps) < 1e-9
              and vals["eta_p2_true"] < 2 * eps
              and vals["eta_p2_dropped"] > 4 * eps)
    flip = vals["eta_p1"] > vals["eta_p2_true"] \
        and vals["eta_p1"] < vals["eta_p2_dropped"]
    return ExperimentResult(
        "E14", "Section 4.3 Remark (i): small weights cannot be dropped",
        "true ranking eta(p1) > eta(p2); dropping weights < eps/k reverses it",
        rows,
        f"all three inequalities match the paper: {passed}; "
        f"ranking flips as claimed: {flip}", passed and flip)


# ----------------------------------------------------------------------
# E15 — Theorem 2.11: persistent cell-label storage.
# ----------------------------------------------------------------------

def run_e15(quick: bool = False) -> ExperimentResult:
    """Theorem 2.11: persistence stores all P_phi in O(mu) space.

    The theorem's point is *per-cell O(1)* storage: the explicit cost grows
    with (number of cells) x (average label-set size) while the persistent
    cost grows only with the number of diagram-edge crossings.  Refining
    the query grid at fixed n makes the gap widen — which is what we
    measure.
    """
    n = 24
    disks = random_disks(n, seed=n + 1, extent=math.sqrt(n) * 2.0,
                         r_min=0.3, r_max=1.0)
    diagram = NonzeroVoronoiDiagram(disks)
    rows = []
    ratios = []
    resolutions = [16, 32] if quick else [16, 32, 64, 128]
    for resolution in resolutions:
        _, stats = persistent_label_field(diagram, resolution=resolution)
        ratios.append(stats.compression)
        rows.append({"n": n, "grid": f"{resolution}x{resolution}",
                     "explicit cost": stats.explicit_cost,
                     "persistent cost": stats.persistent_cost,
                     "compression": round(stats.compression, 1),
                     "distinct sets": stats.distinct_sets,
                     "BFS roots": stats.roots})
    passed = all(r > 2.0 for r in ratios) and ratios[-1] > ratios[0]
    return ExperimentResult(
        "E15", "Theorem 2.11: persistent storage of cell label sets",
        "adjacent cells differ by one label, so persistence stores all "
        "P_phi in O(mu) total space instead of O(n mu)",
        rows,
        f"compression grows as the cell census refines "
        f"(x{ratios[0]:.0f} -> x{ratios[-1]:.0f}): per-cell cost is O(1) "
        f"as the theorem states", passed)


# ----------------------------------------------------------------------
# E16 — ablation: which inputs keep V!=0 near-linear? (open problem (i))
# ----------------------------------------------------------------------

def run_e16(quick: bool = False) -> ExperimentResult:
    """Conclusions, open problem (i): when is ``V!=0`` near-linear?

    The paper asks to "characterize the sets of uncertain points for which
    the complexity of V!=0(P) is near linear", noting the cubic lower
    bounds need very careful configurations.  This ablation sweeps input
    classes at matched sizes and fits the growth exponent of the vertex
    count for each — separating the benign regimes (sparse disjoint disks)
    from the adversarial construction.
    """
    from ..voronoi.constructions import cubic_lower_bound_disks as _cubic

    sizes = [8, 16] if quick else [8, 16, 24, 32]

    def overlapping(n: int) -> List[Disk]:
        return random_disks(n, seed=n, extent=math.sqrt(n), r_min=0.4,
                            r_max=1.2)

    def sparse(n: int) -> List[Disk]:
        return random_disks(n, seed=n, extent=4.0 * math.sqrt(n),
                            r_min=0.2, r_max=0.5)

    def disjoint(n: int) -> List[Disk]:
        return disjoint_disks(n, ratio=2.0, seed=n)

    def adversarial(n: int) -> List[Disk]:
        return _cubic(max(1, n // 4))

    classes = [("dense overlapping", overlapping),
               ("sparse random", sparse),
               ("disjoint lambda=2", disjoint),
               ("Thm 2.7 adversarial", adversarial)]
    rows = []
    exponents = {}
    for name, make in classes:
        vs = []
        for n in sizes:
            disks = make(n)
            diagram = NonzeroVoronoiDiagram(
                disks, merge_tol=1e-9 if name.startswith("Thm") else None)
            vs.append(max(diagram.num_vertices, 1))
            rows.append({"class": name, "n": len(disks),
                         "V": diagram.num_vertices})
        exponents[name] = _fit_exponent([float(s) for s in sizes],
                                        [float(v) for v in vs])
    for name, exp in exponents.items():
        rows.append({"class": name, "n": "fit", "V": f"~n^{exp:.2f}"})
    benign = min(exponents["sparse random"], exponents["disjoint lambda=2"])
    passed = exponents["Thm 2.7 adversarial"] > benign + 0.5
    return ExperimentResult(
        "E16", "Ablation: input classes vs V!=0 growth (open problem i)",
        "the paper conjectures near-linear complexity for realistic inputs; "
        "the cubic bound needs adversarial configurations",
        rows,
        "growth exponents: " + ", ".join(
            f"{k}: {v:.2f}" for k, v in exponents.items())
        + f"; adversarial clearly separated: {passed}", passed)


# ----------------------------------------------------------------------
# E17 — [SE08]: the guaranteed Voronoi diagram has O(n) complexity.
# ----------------------------------------------------------------------

def run_e17(quick: bool = False) -> ExperimentResult:
    """Section 1.2 / [SE08]: guaranteed cells have linear total complexity.

    The paper highlights the contrast: the cells of ``V!=0`` where
    ``NN!=0(q)`` is a singleton (the guaranteed Voronoi diagram) have
    total complexity O(n), against Theta(n^3) for the full diagram.  We
    build both on the same inputs and fit growth exponents.
    """
    from ..voronoi.guaranteed import GuaranteedVoronoi

    sizes = [10, 20] if quick else [10, 20, 40, 80]
    rows = []
    totals = []
    for n in sizes:
        disks = disjoint_disks(n, ratio=2.0, seed=n)
        guaranteed = GuaranteedVoronoi(disks)
        total = guaranteed.total_complexity()
        totals.append(max(total, 1))
        v0 = NonzeroVoronoiDiagram(disks)
        rows.append({"n": n, "guaranteed arcs": total,
                     "arcs per point": round(total / n, 2),
                     "V!=0 complexity": v0.complexity,
                     "nonempty cells": len(guaranteed.nonempty_cells())})
    exponent = _fit_exponent([float(s) for s in sizes],
                             [float(t) for t in totals])
    passed = exponent <= 1.4  # linear, allowing small-size noise
    return ExperimentResult(
        "E17", "[SE08] guaranteed Voronoi diagram: O(n) total complexity",
        "the singleton-NN!=0 cells have O(n) total complexity vs "
        "Theta(n^3) for the full V!=0",
        rows,
        f"guaranteed-cell growth exponent: {exponent:.2f} (theory: 1); "
        f"V!=0 grows visibly faster on the same inputs", passed)


# ----------------------------------------------------------------------
# E18 — the [CKP04] branch-and-prune baseline comparison.
# ----------------------------------------------------------------------

def run_e18(quick: bool = False) -> ExperimentResult:
    """Section 1.2 baseline: R-tree branch-and-prune vs the paper's query.

    [CKP04]'s method answers NN!=0 with rectangle bounds and no
    performance guarantee.  Outputs must agree with ours; the measured
    query times and candidate counts quantify the gap the paper's
    structures close.
    """
    from ..core.baseline import BranchAndPruneIndex
    from ..uncertain.disk_uniform import DiskUniformPoint

    sizes = [1000, 4000] if quick else [1000, 4000, 16000]
    queries = 150
    rows = []
    agree = True
    for n in sizes:
        extent = math.sqrt(n) * 2.0
        disks = random_disks(n, seed=n, extent=extent, r_min=0.1, r_max=0.4)
        pts = [DiskUniformPoint(d.center, d.r) for d in disks]
        ours = PNNIndex(pts)
        baseline = BranchAndPruneIndex(pts)
        rng = random.Random(5)
        qs = [(rng.uniform(0, extent), rng.uniform(0, extent))
              for _ in range(queries)]
        start = time.perf_counter()
        ours_res = [ours.nonzero_nn(q) for q in qs]
        ours_t = (time.perf_counter() - start) / queries
        start = time.perf_counter()
        base_res = [sorted(baseline.nonzero_nn(q)) for q in qs]
        base_t = (time.perf_counter() - start) / queries
        agree &= ours_res == base_res
        cand = statistics.fmean(baseline.pruning_stats(q)[0] for q in qs[:50])
        rows.append({"n": n, "ours_us": round(ours_t * 1e6, 1),
                     "baseline_us": round(base_t * 1e6, 1),
                     "baseline avg candidates": round(cand, 1),
                     "identical answers": ours_res == base_res})
    return ExperimentResult(
        "E18", "[CKP04] R-tree branch-and-prune baseline",
        "prior art answers NN!=0 correctly but with rectangle bounds and "
        "no guarantees; the paper's structures answer the same queries "
        "with guaranteed pruning",
        rows,
        f"outputs identical on every query: {agree}; timings quantify the "
        f"constant-factor and pruning differences", agree)


# ----------------------------------------------------------------------
# E19 — the batch-query engine: throughput vs the scalar loop.
# ----------------------------------------------------------------------

def run_e19(quick: bool = False) -> ExperimentResult:
    """Batch-query subsystem: vectorized queries vs the scalar loop.

    Not a paper artifact — a systems experiment for the ROADMAP's
    throughput goal.  Measures queries/second of the scalar ``nonzero_nn``
    loop against ``batch_nonzero_nn`` (dense matrix kernels for small n,
    bucketed array-kd-tree for large n) and the Monte-Carlo round tensor,
    asserting identical answers throughout.
    """
    configs = [(500, 200)] if quick else [(500, 1000), (4000, 1000),
                                          (20000, 1000)]
    rows = []
    agree = True
    speedups = []
    for n, m in configs:
        extent = math.sqrt(n) * 2.0
        disks = random_disks(n, seed=n + 7, extent=extent,
                             r_min=0.1, r_max=0.4)
        index = PNNIndex([DiskUniformPoint(d.center, d.r) for d in disks])
        rng = random.Random(19)
        qs = np.array([(rng.uniform(0, extent), rng.uniform(0, extent))
                       for _ in range(m)])
        index.batch_nonzero_nn(qs[:4])  # build the engine outside the timer
        # Best-of-two timings on both sides: the ratio survives a noisy
        # scheduler tick on shared runners.
        scalar_t = math.inf
        for _ in range(2):
            start = time.perf_counter()
            scalar = [index.nonzero_nn((x, y)) for x, y in qs]
            scalar_t = min(scalar_t, time.perf_counter() - start)
        batch_t = math.inf
        for _ in range(2):
            start = time.perf_counter()
            batched = index.batch_nonzero_nn(qs)
            batch_t = min(batch_t, time.perf_counter() - start)
        agree &= batched == scalar
        speedups.append(scalar_t / batch_t)
        rows.append({"n": n, "m": m,
                     "backend": index.batch_engine().backend,
                     "scalar q/s": int(m / scalar_t),
                     "batch q/s": int(m / batch_t),
                     "speedup": round(scalar_t / batch_t, 1),
                     "identical": batched == scalar})
    # Exact agreement is the hard requirement; the throughput bar is
    # lower in quick mode (small batches amortize less, and quick runs
    # often share the machine with other jobs).
    passed = agree and max(speedups) >= (2.0 if quick else 5.0)
    return ExperimentResult(
        "E19", "Batch-query engine throughput (vectorized vs scalar)",
        "vectorizing across queries pays an order of magnitude on "
        "thousand-query workloads while returning identical answer sets",
        rows,
        f"identical answers everywhere: {agree}; speedups "
        + ", ".join(f"{s:.1f}x" for s in speedups), passed)


# ----------------------------------------------------------------------
# E20 — the serving subsystem: sharded throughput and cache hit rate.
# ----------------------------------------------------------------------

def run_e20(quick: bool = False) -> ExperimentResult:
    """Serving subsystem: multi-core sharding and result caching.

    Not a paper artifact — the ROADMAP's next scaling step after the
    batch engine.  Measures ``batch_delta`` throughput of the
    single-process engine against :class:`~repro.serving.shard.
    ShardExecutor` fan-out at several worker counts (asserting bitwise-
    identical answers), then drives a repeat-heavy scalar workload
    through a cached :class:`~repro.serving.service.QueryService` and
    reports the hit rate.  Speedups are hardware-dependent (a 1-core
    container cannot beat itself), so exact agreement is the pass/fail
    criterion and throughput is the reported measurement.
    """
    import os

    from ..serving.service import ServiceConfig
    from ..serving.shard import ShardExecutor

    n, m = (2000, 4000) if quick else (20000, 100000)
    shard_counts = [2] if quick else [2, 4]
    extent = math.sqrt(n) * 2.0
    disks = random_disks(n, seed=n + 31, extent=extent, r_min=0.1, r_max=0.4)
    index = PNNIndex([DiskUniformPoint(d.center, d.r) for d in disks])
    rng = random.Random(41)
    qs = np.array([(rng.uniform(0, extent), rng.uniform(0, extent))
                   for _ in range(m)])
    index.batch_delta(qs[:16])  # build the engine outside the timers
    single_t = math.inf
    for _ in range(2):
        start = time.perf_counter()
        base = index.batch_delta(qs)
        single_t = min(single_t, time.perf_counter() - start)
    rows = [{"configuration": "single process", "workers": 1,
             "mode": "-", "queries/s": int(m / single_t),
             "speedup": 1.0, "identical": True}]
    agree = True
    for w in shard_counts:
        with ShardExecutor(index.points, workers=w) as executor:
            executor.run("delta", qs[:16])  # replicas warm
            shard_t = math.inf
            for _ in range(2):
                start = time.perf_counter()
                sharded = executor.run("delta", qs)
                shard_t = min(shard_t, time.perf_counter() - start)
            identical = bool(np.array_equal(base, sharded))
            agree &= identical
            rows.append({"configuration": f"{w} shards", "workers": w,
                         "mode": executor.mode,
                         "queries/s": int(m / shard_t),
                         "speedup": round(single_t / shard_t, 2),
                         "identical": identical})
    # Cache experiment: bursty traffic revisiting a small hot set of
    # locations (pi(q) is piecewise-constant, so real clients repeat).
    hot = [tuple(qs[rng.randrange(200)]) for _ in range(2000)]
    config = ServiceConfig(workers=0, cache_capacity=4096, coalesce=False)
    with index.serve(config) as service:
        for q in hot:
            service.delta(q)
        cache_snap = service.cache.snapshot()
    rows.append({"configuration": "cached scalar stream", "workers": 1,
                 "mode": "cache", "queries/s": "-",
                 "speedup": f"hit rate {cache_snap['hit_rate']:.0%}",
                 "identical": True})
    cores = os.cpu_count() or 1
    passed = agree and cache_snap["hit_rate"] >= 0.5
    return ExperimentResult(
        "E20", "Serving-layer throughput (sharding + caching)",
        "sharding the batch engine across worker replicas multiplies "
        "throughput by the core count while answers stay bitwise "
        "identical; exact-keyed caching absorbs repeat traffic",
        rows,
        f"bitwise-identical sharded answers: {agree}; cache hit rate "
        f"{cache_snap['hit_rate']:.0%} on the repeat workload "
        f"(host has {cores} core(s) — speedups are hardware-bound)",
        passed)


# ----------------------------------------------------------------------
# E21 — vectorized exact quantification: the Eq. (2) sweep in batch.
# ----------------------------------------------------------------------

def run_e21(quick: bool = False) -> ExperimentResult:
    """Exact-quantification throughput: vectorized Eq. (2) vs the scalar sweep.

    Not a paper artifact — the systems follow-up to E19/E20: the exact
    discrete quantification vector was the last scalar-only hot path.
    Measures queries/second of the per-query ``quantify(method="exact")``
    sweep against :meth:`~repro.core.index.PNNIndex.batch_quantify_exact`
    (one distance matrix, prefix-sorted sweep vectorized across queries),
    asserting bitwise-identical probability dicts throughout, and checks
    that histogram/polygon mixed batches now run on closed-form kernels
    (no ``"fallback"`` group in the batch engine).
    """
    from ..core.workloads import rfid_histogram_field
    from ..uncertain.polygon import ConvexPolygonUniformPoint

    configs = [(50, 4, 200)] if quick else [(50, 4, 1000), (200, 5, 1000),
                                            (500, 6, 1000)]
    rows = []
    agree = True
    speedups = []
    for n, k, m in configs:
        pts = random_discrete_points(n, k, seed=n + 3, spread=2.0)
        index = PNNIndex(pts)
        extent = math.sqrt(n) * 2.2
        rng = random.Random(23)
        qs = np.array([(rng.uniform(0, extent), rng.uniform(0, extent))
                       for _ in range(m)])
        index.batch_quantify_exact(qs[:4])  # build outside the timers
        scalar_t = math.inf
        for _ in range(2):
            start = time.perf_counter()
            scalar = [index.quantify((x, y), method="exact")
                      for x, y in qs.tolist()]
            scalar_t = min(scalar_t, time.perf_counter() - start)
        batch_t = math.inf
        for _ in range(2):
            start = time.perf_counter()
            batched = index.batch_quantify_exact(qs)
            batch_t = min(batch_t, time.perf_counter() - start)
        agree &= batched == scalar
        speedups.append(scalar_t / batch_t)
        rows.append({"n": n, "k": k, "m": m, "N sites": n * k,
                     "scalar q/s": int(m / scalar_t),
                     "batch q/s": int(m / batch_t),
                     "speedup": round(scalar_t / batch_t, 1),
                     "identical": batched == scalar})
    # Histogram/polygon kernel coverage: a mixed index must not route any
    # model through the scalar fallback group anymore.
    mixed = list(rfid_histogram_field(6, grid=3, seed=4))
    mixed.append(ConvexPolygonUniformPoint([(0, 0), (2, 0), (1.5, 1.5),
                                            (0.5, 1.6)]))
    groups = PNNIndex(mixed).batch_engine().kernel_groups()
    no_fallback = "fallback" not in groups
    rows.append({"n": len(mixed), "k": "-", "m": "-", "N sites": "-",
                 "scalar q/s": "-", "batch q/s": "-",
                 "speedup": f"kernels: {'+'.join(groups)}",
                 "identical": no_fallback})
    passed = agree and no_fallback and \
        max(speedups) >= (2.0 if quick else 5.0)
    return ExperimentResult(
        "E21", "Exact quantification throughput (vectorized Eq. (2) sweep)",
        "vectorizing the exact sweep across queries pays ~an order of "
        "magnitude while returning bitwise-identical probability vectors",
        rows,
        f"identical exact dicts everywhere: {agree}; histogram/polygon on "
        f"closed-form kernels: {no_fallback}; speedups "
        + ", ".join(f"{s:.1f}x" for s in speedups), passed)


# ----------------------------------------------------------------------
# E22 — vectorized V_Pr construction: batched build vs the scalar oracle.
# ----------------------------------------------------------------------

def run_e22(quick: bool = False) -> ExperimentResult:
    """V_Pr build throughput: the vectorized pipeline vs the scalar oracle.

    Not a paper artifact — the systems follow-up to E21: after the batch
    query engines, ``V_Pr`` construction was the last scalar-only hot
    path.  Builds the Lemma 4.1 diagram through both
    :meth:`PNNIndex.build_vpr` modes at growing sizes, asserting identical
    V/E/F counts and **bitwise-equal** face probability vectors while
    measuring the single-core build speedup (benchmark E22 enforces the
    >= 5x bar at its largest instance; this runner uses smaller sizes so
    the full sweep stays fast).
    """
    ns = [6] if quick else [6, 9, 12]
    rows = []
    agree = True
    speedups = []
    for n in ns:
        pts = random_discrete_points(n, 2, seed=31, spread=2.0)
        index = PNNIndex(pts)
        start = time.perf_counter()
        scalar = index.build_vpr(build_mode="scalar")
        scalar_t = time.perf_counter() - start
        start = time.perf_counter()
        vector = index.build_vpr(build_mode="vector")
        vector_t = time.perf_counter() - start
        identical = (scalar.num_vertices == vector.num_vertices
                     and scalar.num_faces == vector.num_faces
                     and scalar._face_vectors == vector._face_vectors)
        agree &= identical
        speedups.append(scalar_t / vector_t)
        rows.append({"n": n, "N sites": 2 * n, "V": vector.num_vertices,
                     "cells": vector.num_faces,
                     "scalar_s": round(scalar_t, 3),
                     "vector_s": round(vector_t, 3),
                     "speedup": round(scalar_t / vector_t, 1),
                     "identical": identical})
    passed = agree and max(speedups) >= (1.0 if quick else 2.0)
    return ExperimentResult(
        "E22", "V_Pr construction throughput (vectorized build pipeline)",
        "routing bisectors, the arrangement, and face labeling through "
        "the batched kernels pays ~5x on one core at tier-1-feasible "
        "sizes while the diagrams stay bitwise identical",
        rows,
        f"bitwise-identical diagrams everywhere: {agree}; speedups "
        + ", ".join(f"{s:.1f}x" for s in speedups)
        + " (growing with instance size; E22 bench enforces the bar)",
        passed)


# ----------------------------------------------------------------------
# E23 — pluggable executor backends: process vs thread vs shm vs V_Pr.
# ----------------------------------------------------------------------

def run_e23(quick: bool = False) -> ExperimentResult:
    """Executor-backend throughput and the V_Pr-backed serving kind.

    Not a paper artifact — the systems follow-up to E20: the sharding
    layer's execution engine is now pluggable
    (:mod:`repro.serving.executors`), so this runner races the same
    ``batch_delta`` workload across the ``process``, ``thread``, and
    ``shm`` backends (asserting bitwise-identical answers), then serves
    exact quantification through the new ``quantify_vpr`` kind (point
    location into precomputed face vectors) and checks it row for row
    against the direct Eq. (2) sweep.  Speedups are hardware-dependent
    (a 1-core container cannot beat itself), so exact agreement is the
    pass/fail criterion and throughput is the reported measurement.
    """
    import os

    from ..serving.shard import ShardExecutor

    n, m = (2000, 4000) if quick else (20000, 60000)
    workers = 2 if quick else 4
    extent = math.sqrt(n) * 2.0
    disks = random_disks(n, seed=n + 37, extent=extent, r_min=0.1,
                         r_max=0.4)
    index = PNNIndex([DiskUniformPoint(d.center, d.r) for d in disks])
    rng = random.Random(53)
    qs = np.array([(rng.uniform(0, extent), rng.uniform(0, extent))
                   for _ in range(m)])
    index.batch_delta(qs[:16])  # build the engine outside the timers
    single_t = math.inf
    for _ in range(2):
        start = time.perf_counter()
        base = index.batch_delta(qs)
        single_t = min(single_t, time.perf_counter() - start)
    rows = [{"backend": "single", "mode": "-", "queries/s": int(m / single_t),
             "speedup": 1.0, "identical": True}]
    agree = True
    for backend in ("process", "thread", "shm"):
        with ShardExecutor(index.points, workers=workers, backend=backend,
                           index=index) as executor:
            executor.run("delta", qs[:16])  # replicas/pools warm
            shard_t = math.inf
            for _ in range(2):
                start = time.perf_counter()
                sharded = executor.run("delta", qs)
                shard_t = min(shard_t, time.perf_counter() - start)
            identical = bool(np.array_equal(base, sharded))
            agree &= identical
            rows.append({"backend": backend, "mode": executor.mode,
                         "queries/s": int(m / shard_t),
                         "speedup": round(single_t / shard_t, 2),
                         "identical": identical})
    # The seventh kind: V_Pr-backed exact quantification vs the sweep.
    vn = 6 if quick else 10
    pts = random_discrete_points(vn, 2, seed=71, spread=2.0)
    vindex = PNNIndex(pts)
    vqs = np.array([(rng.uniform(-1, math.sqrt(vn) * 2.2 + 1),
                     rng.uniform(-1, math.sqrt(vn) * 2.2 + 1))
                    for _ in range(500 if quick else 3000)])
    start = time.perf_counter()
    sweep = vindex.batch_quantify_exact(vqs)
    sweep_t = time.perf_counter() - start
    vindex.batch_quantify_vpr(vqs[:4])  # diagram + locator warm
    start = time.perf_counter()
    served = vindex.batch_quantify_vpr(vqs)
    vpr_t = time.perf_counter() - start
    vpr_identical = served == sweep
    agree &= vpr_identical
    rows.append({"backend": "quantify_vpr", "mode": "locator",
                 "queries/s": int(len(vqs) / vpr_t),
                 "speedup": round(sweep_t / vpr_t, 2),
                 "identical": vpr_identical})
    cores = os.cpu_count() or 1
    return ExperimentResult(
        "E23", "Executor-backend throughput (process/thread/shm + V_Pr)",
        "the sharding layer's execution engine is pluggable — worker "
        "replicas over pickle or shared memory, or threads over one "
        "index — with bitwise-identical answers everywhere; V_Pr point "
        "location serves exact quantification without re-sweeping",
        rows,
        f"bitwise-identical answers across all backends and the V_Pr "
        f"path: {agree} (host has {cores} core(s) — speedups are "
        f"hardware-bound)",
        agree)


# ----------------------------------------------------------------------
# E25 — observability: tracing parity and the disabled-path overhead.
# ----------------------------------------------------------------------

def run_e25(quick: bool = False) -> ExperimentResult:
    """End-to-end tracing stays inert and (when disabled) nearly free.

    Not a paper artifact — the systems follow-up to E23/E24: the
    observability layer (:mod:`repro.obs`) threads spans through every
    serving stage, so this runner answers the same ``delta`` workload
    with tracing disabled, sampled (10%), and full (100%), asserting
    bitwise-identical answers in every mode, and reports the measured
    throughput ratio against the raw engine call.  Well-formed traces
    (single root, no orphans) are asserted on the full-tracing run; the
    numeric overhead bar lives in benchmark E25, where timing is done
    under best-of repetition.
    """
    from ..obs.trace import TraceConfig

    n, m = (1000, 4000) if quick else (5000, 30000)
    extent = math.sqrt(n) * 2.0
    disks = random_disks(n, seed=n + 25, extent=extent, r_min=0.1,
                         r_max=0.4)
    index = PNNIndex([DiskUniformPoint(d.center, d.r) for d in disks])
    rng = random.Random(25)
    qs = np.array([(rng.uniform(0, extent), rng.uniform(0, extent))
                   for _ in range(m)])
    index.batch_delta(qs[:16])  # build the engine outside the timers
    direct_t = math.inf
    for _ in range(2):
        start = time.perf_counter()
        direct = index.batch_delta(qs)
        direct_t = min(direct_t, time.perf_counter() - start)
    rows: List[Dict[str, object]] = [
        {"mode": "engine", "queries/s": int(m / direct_t),
         "ratio": 1.0, "spans": 0, "identical": True}]
    agree = True
    trees_ok = True
    for mode, trace in (("disabled", None),
                        ("sampled", TraceConfig(enabled=True, sample=0.1)),
                        ("full", TraceConfig(enabled=True, sample=1.0))):
        with index.serve(workers=0, coalesce=False, cache_capacity=64,
                         trace=trace) as service:
            run_t = math.inf
            for _ in range(2):
                start = time.perf_counter()
                answers = service.batch_delta(qs)
                run_t = min(run_t, time.perf_counter() - start)
            identical = bool(np.array_equal(direct, answers))
            agree &= identical
            spans = service.tracer.snapshot()["spans_recorded"] \
                if service.tracer.enabled else 0
            if mode == "full":
                records = service.tracer.spans()
                by_trace: Dict[str, List[Dict]] = {}
                for rec in records:
                    by_trace.setdefault(rec["trace_id"], []).append(rec)
                for recs in by_trace.values():
                    ids = {r["span_id"] for r in recs}
                    roots = [r for r in recs if not r["parent_id"]]
                    trees_ok &= len(roots) == 1
                    trees_ok &= all(r["parent_id"] in ids for r in recs
                                    if r["parent_id"])
            rows.append({"mode": mode, "queries/s": int(m / run_t),
                         "ratio": round(run_t / direct_t, 3),
                         "spans": spans, "identical": identical})
    return ExperimentResult(
        "E25", "Tracing overhead (disabled/sampled/full serving modes)",
        "request tracing observes the serving pipeline without steering "
        "it: answers stay bitwise identical in every mode, the disabled "
        "path is a NULL-span attribute check (benchmark E25 bars it at "
        "<= 3% over the raw engine call), and sampled traces form "
        "well-parented span trees",
        rows,
        f"answers identical across all tracing modes: {agree}; "
        f"span trees well-formed (single root, no orphans): {trees_ok}",
        agree and trees_ok)


# ----------------------------------------------------------------------
# E27 — the kernel tier: compiled native providers vs the NumPy oracle.
# ----------------------------------------------------------------------

def run_e27(quick: bool = False) -> ExperimentResult:
    """Kernel-tier parity and speedup: native C providers vs NumPy.

    Not a paper artifact — the systems follow-up to E21/E23: the
    pluggable kernel tier (:mod:`repro.spatial.kernels`) moves the
    batch engines' inner loops (distance matrices, the Eq. (2) sweep
    step loop, the geometry batch kernels, the slab locator's bisection)
    behind a provider protocol with a compiled-C implementation selected
    like the executor backends (``kernel="auto"``).  This runner drives
    the two hot entry points on both providers at the engines' own chunk
    shape, asserting bitwise-identical outputs, and reports the
    single-core speedups.  Hosts without a C compiler report the
    (passing) degradation instead — NumPy answers are the oracle, so a
    missing native provider costs speed, never correctness.
    """
    from ..quantification.batch_exact import BatchExactQuantifier
    from ..spatial.kernels import (get_provider, kernel_status,
                                   native_available)

    status = kernel_status()
    if not native_available():
        rows = [{"op": "(degraded)", "numpy ms": "-", "native ms": "-",
                 "speedup": "-", "identical": "n/a"}]
        return ExperimentResult(
            "E27", "Kernel tier (compiled native providers vs NumPy)",
            "the native kernel tier triples single-core hot-loop "
            "throughput while staying bitwise-identical to the NumPy "
            "oracle, and degrades to NumPy where no compiler exists",
            rows,
            f"no usable C compiler on this host "
            f"({status['native_error']}); kernel=auto degrades to "
            f"NumPy — correctness unaffected", True)

    oracle, native = get_provider("numpy"), get_provider("native")
    m, sites = (512, 256) if quick else (2048, 512)
    n, k = (50, 4) if quick else (200, 5)
    rng = np.random.default_rng(2027)
    rows = []
    agree = True
    speedups = {}

    def timed(fn):
        best = math.inf
        result = None
        for _ in range(2):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    qx, qy = rng.uniform(0, 50, m), rng.uniform(0, 50, m)
    px, py = rng.uniform(0, 50, sites), rng.uniform(0, 50, sites)
    o_t, d_o = timed(lambda: oracle.distance_matrix(qx, qy, px, py))
    n_t, d_n = timed(lambda: native.distance_matrix(qx, qy, px, py))
    same = bool(np.array_equal(d_o, d_n))
    agree &= same
    speedups["distance_matrix"] = o_t / n_t
    rows.append({"op": "distance_matrix", "numpy ms": round(o_t * 1e3, 2),
                 "native ms": round(n_t * 1e3, 2),
                 "speedup": round(o_t / n_t, 1), "identical": same})

    pts = random_discrete_points(n, k, seed=n + 3, spread=2.0)
    quant = BatchExactQuantifier(pts, kernel="numpy")
    extent = math.sqrt(n) * 2.2
    q = rng.uniform(0, extent, (m, 2))
    d = oracle.distance_matrix(q[:, 0], q[:, 1], quant._sx, quant._sy)
    order = np.argsort(d, axis=1, kind="stable")
    ds = np.take_along_axis(d, order, axis=1)
    pp, pw = quant._parent[order], quant._weight[order]
    o_t, (r_o, done_o) = timed(lambda: oracle.sweep_eq2(
        ds, pp, pw, quant._totals, n, 0.0, final=True))
    n_t, (r_n, done_n) = timed(lambda: native.sweep_eq2(
        ds, pp, pw, quant._totals, n, 0.0, final=True))
    same = bool(np.array_equal(r_o, r_n)
                and np.array_equal(done_o, done_n))
    agree &= same
    speedups["sweep_eq2"] = o_t / n_t
    rows.append({"op": "sweep_eq2", "numpy ms": round(o_t * 1e3, 2),
                 "native ms": round(n_t * 1e3, 2),
                 "speedup": round(o_t / n_t, 1), "identical": same})

    bar = 2.0 if quick else 3.0
    passed = agree and min(speedups.values()) >= bar
    return ExperimentResult(
        "E27", "Kernel tier (compiled native providers vs NumPy)",
        "the native kernel tier triples single-core hot-loop throughput "
        "while staying bitwise-identical to the NumPy oracle, and "
        "degrades to NumPy where no compiler exists",
        rows,
        f"bitwise-identical on both entry points: {agree}; speedups "
        + ", ".join(f"{op} {s:.1f}x" for op, s in speedups.items())
        + f" (bar {bar:g}x; compiler {status['compiler']})", passed)


REGISTRY: Dict[str, Callable[[bool], ExperimentResult]] = {
    "E1": run_e01, "E2": run_e02, "E3": run_e03, "E4": run_e04,
    "E5": run_e05, "E6": run_e06, "E7": run_e07, "E8": run_e08,
    "E9": run_e09, "E10": run_e10, "E11": run_e11, "E12": run_e12,
    "E13": run_e13, "E14": run_e14, "E15": run_e15, "E16": run_e16,
    "E17": run_e17, "E18": run_e18, "E19": run_e19, "E20": run_e20,
    "E21": run_e21, "E22": run_e22, "E23": run_e23, "E25": run_e25,
    "E27": run_e27,
}


def run_all(quick: bool = False) -> List[ExperimentResult]:
    """Run every registered experiment in order."""
    return [runner(quick) for _, runner in sorted(
        REGISTRY.items(), key=lambda kv: int(kv[0][1:]))]
