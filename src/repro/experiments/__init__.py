"""Experiment registry: regenerates every reproduced table/figure.

``python -m repro.experiments`` writes EXPERIMENTS.md; individual runners
are also called by the benchmark harness.
"""

from .runners import REGISTRY, ExperimentResult, run_all

__all__ = ["REGISTRY", "ExperimentResult", "run_all"]
