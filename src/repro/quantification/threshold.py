"""Threshold NN queries on top of ±epsilon estimators.

The paper's conclusion highlights "threshold NN queries" ([DYM+05]-style:
report the points with ``pi_i(q) > tau``) as a direct application of the
quantification estimators.  With any estimator guaranteeing
``|pi_hat - pi| <= eps`` the classification is:

* ``pi_hat >= tau + eps``  ->  certainly above the threshold;
* ``pi_hat <= tau - eps``  ->  certainly below;
* otherwise               ->  undecidable at this precision.

Choosing ``eps < tau / 2`` guarantees the candidate set is small: at most
``1 / (tau - eps)`` points can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["ThresholdResult", "classify_threshold"]


@dataclass
class ThresholdResult:
    """Outcome of a threshold query at precision *epsilon*.

    ``certain`` — indices guaranteed to satisfy ``pi_i(q) > tau``;
    ``candidates`` — indices whose membership cannot be decided at this
    precision (their true probability lies within ``eps`` of ``tau``).
    """

    tau: float
    epsilon: float
    certain: List[int]
    candidates: List[int]

    def possible(self) -> List[int]:
        """All indices that may satisfy the threshold."""
        return sorted(set(self.certain) | set(self.candidates))


def classify_threshold(estimates: Dict[int, float], tau: float,
                       epsilon: float) -> ThresholdResult:
    """Classify sparse ±epsilon estimates against threshold *tau*.

    Absent indices are treated as estimate 0 — they can only be certain
    non-members when ``eps <= tau``, which the caller must ensure (the
    natural choice ``eps < tau/2`` does).
    """
    if not 0 < tau < 1:
        raise ValueError("tau must lie in (0, 1)")
    if epsilon >= tau:
        raise ValueError("epsilon must be below tau for a meaningful query")
    certain = sorted(i for i, v in estimates.items() if v >= tau + epsilon)
    candidates = sorted(i for i, v in estimates.items()
                        if tau - epsilon < v < tau + epsilon)
    return ThresholdResult(tau, epsilon, certain, candidates)
