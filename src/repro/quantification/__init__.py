"""Quantification-probability algorithms (Section 4): exact, Monte-Carlo
and spiral-search estimators plus threshold classification."""

from .batch_exact import BatchExactQuantifier
from .exact_continuous import (
    quantification_continuous,
    quantification_continuous_vector,
)
from .exact_discrete import (
    quantification_vector,
    quantification_vector_naive,
    sweep_quantification,
    sweep_site_probabilities,
)
from .monte_carlo import (
    MonteCarloQuantifier,
    continuous_sample_complexity,
    discretize_continuous,
    rounds_for_all_queries,
    rounds_for_single_query,
)
from .spiral import (
    SpiralSearchQuantifier,
    m_bound,
    remark_eta_comparison,
    remark_small_weights_example,
)
from .threshold import ThresholdResult, classify_threshold

__all__ = [
    "BatchExactQuantifier",
    "MonteCarloQuantifier",
    "SpiralSearchQuantifier",
    "ThresholdResult",
    "classify_threshold",
    "continuous_sample_complexity",
    "discretize_continuous",
    "m_bound",
    "quantification_continuous",
    "quantification_continuous_vector",
    "quantification_vector",
    "quantification_vector_naive",
    "remark_eta_comparison",
    "remark_small_weights_example",
    "rounds_for_all_queries",
    "rounds_for_single_query",
    "sweep_quantification",
    "sweep_site_probabilities",
]
