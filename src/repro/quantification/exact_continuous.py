"""Quantification probabilities for continuous pdfs by quadrature (Eq. 1).

    pi_i(q) = integral over r of  g_{q,i}(r) * prod_{j != i} (1 - G_{q,j}(r))

The paper notes exact values "require complex n-dimensional integration";
for the *radial* form above, however, one 1-D integral per point suffices
once the distance cdfs ``G_{q,j}`` are available — and our uncertain-point
models provide them analytically (uniform disk, histogram) or by quadrature
(truncated Gaussian).  This module evaluates Eq. (1) with adaptive
Simpson quadrature, splitting at every ``delta_j(q)`` / ``Delta_j(q)``
(the kinks of the integrand), and serves as the ground truth for the
Monte-Carlo benchmarks (E12).

Cost grows with ``n`` per evaluation point, so this is a reference
implementation, not a query structure — exactly the motivation the paper
gives for its approximation algorithms.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

from ..geometry.primitives import Point
from ..uncertain.base import UncertainPoint

__all__ = ["quantification_continuous", "quantification_continuous_vector"]


def _adaptive_simpson(f: Callable[[float], float], a: float, b: float,
                      tol: float, max_depth: int = 18) -> float:
    """Standard recursive adaptive Simpson on ``[a, b]``."""
    fa, fb = f(a), f(b)
    m = 0.5 * (a + b)
    fm = f(m)
    whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb)

    def recurse(a: float, fa: float, b: float, fb: float, m: float,
                fm: float, whole: float, tol: float, depth: int) -> float:
        lm = 0.5 * (a + m)
        rm = 0.5 * (m + b)
        flm, frm = f(lm), f(rm)
        left = (m - a) / 6.0 * (fa + 4.0 * flm + fm)
        right = (b - m) / 6.0 * (fm + 4.0 * frm + fb)
        if depth >= max_depth or abs(left + right - whole) <= 15.0 * tol:
            return left + right + (left + right - whole) / 15.0
        return (recurse(a, fa, m, fm, lm, flm, left, tol / 2.0, depth + 1)
                + recurse(m, fm, b, fb, rm, frm, right, tol / 2.0, depth + 1))

    return recurse(a, fa, b, fb, m, fm, whole, tol, 0)


def quantification_continuous(points: Sequence[UncertainPoint], q: Point,
                              i: int, tol: float = 1e-9) -> float:
    """``pi_i(q)`` for continuous models, by adaptive quadrature of Eq. (1).

    The integration domain is ``[delta_i(q), Delta_i(q)]`` intersected with
    ``[0, min_j Delta_j(q)]`` (beyond the smallest max-distance some factor
    ``1 - G_j`` is identically zero), subdivided at every other point's
    ``delta_j`` and ``Delta_j`` so each panel is smooth.
    """
    target = points[i]
    lo = target.min_dist(q)
    hi = min(p.max_dist(q) for p in points)
    hi = min(hi, target.max_dist(q))
    if hi <= lo:
        return 0.0

    others = [p for j, p in enumerate(points) if j != i]

    def integrand(r: float) -> float:
        g = target.distance_pdf(q, r)
        if g == 0.0:
            return 0.0
        prod = g
        for p in others:
            prod *= 1.0 - p.distance_cdf(q, r)
            if prod == 0.0:
                return 0.0
        return prod

    # Panel boundaries at every kink of the integrand.
    knots = {lo, hi}
    for p in points:
        for val in (p.min_dist(q), p.max_dist(q)):
            if lo < val < hi:
                knots.add(val)
    ordered = sorted(knots)
    total = 0.0
    for a, b in zip(ordered, ordered[1:]):
        if b - a > 1e-13:
            total += _adaptive_simpson(integrand, a, b,
                                       tol * max(b - a, 1e-6))
    return min(1.0, max(0.0, total))


def quantification_continuous_vector(points: Sequence[UncertainPoint],
                                     q: Point,
                                     tol: float = 1e-9) -> List[float]:
    """The full vector ``(pi_1(q), ..., pi_n(q))`` by repeated quadrature."""
    return [quantification_continuous(points, q, i, tol)
            for i in range(len(points))]
