"""The spiral-search estimator (Section 4.3, Theorem 4.7).

For discrete distributions whose location probabilities have bounded
spread ``rho = max w / min w`` (Eq. 9), the ``m(rho, eps)`` sites nearest
to the query already pin every quantification probability down to additive
error ``eps``:

    m(rho, eps) = ceil(rho * k * ln(1/eps)) + k - 1        (Section 4.3)

(Theorem 4.7's statement writes the query bound with ``log(rho/eps)``; the
construction in the text uses ``ln(1/eps)``, which its Lemma 4.6 proof
supports, so that is what we implement — the benchmark validates the error
guarantee empirically.)

The estimator retrieves the ``m`` nearest sites from one global kd-tree
(standing in for the [AC09] k-NN structure, see DESIGN.md) and runs the
truncated Eq. (2) sweep on them; Lemma 4.6 gives
``pi_hat_i(q) in [pi_i(q) - eps, pi_i(q)]``... more precisely
``pi_hat_i <= pi_i <= pi_hat_i + eps`` — a one-sided guarantee the tests
check exactly.

The module also ships the paper's Remark (i) adversarial example
(:func:`remark_small_weights_example`), showing why sites with tiny weights
cannot simply be dropped.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..geometry.primitives import Point, dist
from ..spatial.kdtree import KDTree
from ..uncertain.discrete import DiscreteUncertainPoint
from .exact_discrete import sweep_quantification, sweep_site_probabilities

__all__ = [
    "SpiralSearchQuantifier",
    "m_bound",
    "remark_small_weights_example",
    "remark_eta_comparison",
]


def m_bound(rho: float, k: int, epsilon: float) -> int:
    """``m(rho, eps) = ceil(rho k ln(1/eps)) + k - 1`` (Section 4.3)."""
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    if rho < 1 or k < 1:
        raise ValueError("need rho >= 1 and k >= 1")
    return math.ceil(rho * k * math.log(1.0 / epsilon)) + k - 1


class SpiralSearchQuantifier:
    """Theorem 4.7's structure: one kd-tree over all ``N = nk`` sites.

    Preprocessing is ``O(N log N)``; a query retrieves
    ``min(m(rho, eps), N)`` sites by incremental best-first search and
    sweeps them in ``O(m log m)``.
    """

    def __init__(self, points: Sequence[DiscreteUncertainPoint]) -> None:
        if not points:
            raise ValueError("need at least one uncertain point")
        self.points = list(points)
        sites: List[Point] = []
        self._owners: List[int] = []
        self._site_weights: List[float] = []
        weights_flat: List[float] = []
        for i, p in enumerate(self.points):
            for site, w in p.sites_with_weights():
                sites.append(site)
                self._owners.append(i)
                self._site_weights.append(w)
                weights_flat.append(w)
        self._tree = KDTree(sites)
        self.k_max = max(p.k for p in self.points)
        self.rho = max(weights_flat) / min(weights_flat)
        self.total_sites = len(sites)

    # ------------------------------------------------------------------
    def m_for(self, epsilon: float) -> int:
        """Sites to retrieve for additive error *epsilon* (capped at N)."""
        return min(self.total_sites, m_bound(self.rho, self.k_max, epsilon))

    def estimate(self, q: Point, epsilon: float) -> Dict[int, float]:
        """Sparse ``{i: pi_hat_i(q)}`` with ``pi_hat <= pi <= pi_hat + eps``.

        Indices whose distributions contribute no retrieved site are
        implicitly zero, as in the paper ("sets the estimate to 0 for the
        rest of the points").
        """
        m = self.m_for(epsilon)
        retrieved = self._tree.k_nearest(q, m)
        sweep = [(d, self._owners[idx], self._site_weights[idx])
                 for idx, d in retrieved]
        totals = [p.k for p in self.points]
        vector = sweep_quantification(sweep, totals)
        return {i: v for i, v in enumerate(vector) if v > 0.0}

    def estimate_vector(self, q: Point, epsilon: float) -> List[float]:
        """Dense estimate vector of length ``n``."""
        out = [0.0] * len(self.points)
        for i, v in self.estimate(q, epsilon).items():
            out[i] = v
        return out

    def retrieved_count(self, epsilon: float) -> int:
        """How many sites a query at this epsilon touches (for benches)."""
        return self.m_for(epsilon)


def remark_small_weights_example(
        epsilon: float = 0.01,
        n_mid: int = 50) -> Tuple[List[DiscreteUncertainPoint], Point]:
    """The adversarial instance from Section 4.3, Remark (i).

    Query at the origin.  ``p_1`` (weight ``3 eps``) is closest; then
    ``n_mid`` sites of weight ``2/n`` each from distinct uncertain points;
    then ``p_2`` (weight ``5 eps``).  Dropping the tiny middle weights
    makes ``p_2`` look more likely than ``p_1`` even though the true
    probabilities order the other way — the estimator must keep them.

    Each uncertain point gets a far-away second site carrying the rest of
    its mass (the paper leaves the remainder implicit; any placement
    farther than all listed sites works).  Returns ``(points, query)``.
    """
    n = 2 * n_mid  # the paper's n, with mid sites = n/2
    far_y = 1_000.0
    points: List[DiscreteUncertainPoint] = []
    # P_1: nearest site p_1 with weight 3*eps at distance 1.
    points.append(DiscreteUncertainPoint(
        [(1.0, 0.0), (0.0, far_y)], [3.0 * epsilon, 1.0 - 3.0 * epsilon],
        normalize=False))
    # Middle points P_3 ... : one site each at increasing distances with
    # weight 2/n.
    for t in range(n_mid):
        d = 2.0 + t * 0.01
        points.append(DiscreteUncertainPoint(
            [(d, 0.0), (0.0, far_y + t + 1)], [2.0 / n, 1.0 - 2.0 / n],
            normalize=False))
    # P_2: site p_2 with weight 5*eps, farther than all middle sites.
    points.insert(1, DiscreteUncertainPoint(
        [(3.0, 0.0), (0.0, far_y - 1.0)], [5.0 * epsilon, 1.0 - 5.0 * epsilon],
        normalize=False))
    return points, (0.0, 0.0)


def remark_eta_comparison(epsilon: float = 0.01,
                          n_mid: int = 50) -> Dict[str, float]:
    """Quantities of the Remark (i) argument, computed on the instance above.

    Returns a dict with:

    * ``eta_p1`` — probability that the closest site ``p_1`` is the NN
      (the paper: exactly ``3 eps``);
    * ``eta_p2_true`` — probability that ``p_2`` is the NN with the
      small-weight middle sites kept (paper: ``< 2 eps``);
    * ``eta_p2_dropped`` — the *wrong* value obtained by discarding sites
      of weight ``<< eps/k`` (paper: ``> 4 eps``).

    The ranking flip (``eta_p1 > eta_p2_true`` but
    ``eta_p1 < eta_p2_dropped``) is the remark's point: the spiral-search
    truncation must be by *distance*, not by weight.
    """
    points, q = remark_small_weights_example(epsilon, n_mid)
    totals = [p.k for p in points]

    def near_sites(drop_middle: bool):
        sweep = []
        site_of_interest = {}
        for i, p in enumerate(points):
            for j, (site, w) in enumerate(p.sites_with_weights()):
                if drop_middle and i >= 2 and j == 0:
                    continue  # the middle points' near sites
                sid = len(sweep)
                sweep.append((dist(q, site), i, w))
                if i in (0, 1) and j == 0:
                    site_of_interest[i] = sid
        return sweep, site_of_interest

    sweep_full, ids_full = near_sites(drop_middle=False)
    etas_full = sweep_site_probabilities(sweep_full, totals)
    sweep_drop, ids_drop = near_sites(drop_middle=True)
    etas_drop = sweep_site_probabilities(sweep_drop, totals)
    return {
        "eta_p1": etas_full[ids_full[0]],
        "eta_p2_true": etas_full[ids_full[1]],
        "eta_p2_dropped": etas_drop[ids_drop[1]],
    }
