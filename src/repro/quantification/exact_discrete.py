"""Exact quantification probabilities for discrete distributions (Eq. 2).

For uncertain points with discrete distributions the quantification
probability is the finite sum

    pi_i(q) = sum_{p_is in P_i} w_is * prod_{j != i} (1 - G_{q,j}(d(p_is, q)))

with ``G_{q,j}(r) = sum of w_jt over sites of P_j within distance r``
(closed ``<=``).  A single sweep over all ``N = sum k_i`` sites in order of
distance from ``q`` evaluates the whole vector:

* per parent ``j`` we maintain the survival factor ``f_j = 1 - G_{q,j}``;
* the running product ``prod_j f_j`` is maintained multiplicatively with an
  explicit *zero counter* — once every site of a parent has been passed its
  factor is exactly zero (the weights sum to 1), and tracking this by a
  site count rather than floating-point subtraction keeps the sweep exact;
* the contribution of a site then needs ``prod_{j != parent}``, recovered
  from the running product in O(1) by the zero-count case analysis.

Total ``O(N log N)`` per query.  ``quantification_vector_naive`` is the
direct ``O(N * n log k)`` transcription of Eq. (2) used to cross-check the
sweep in tests.

Tie convention: the paper assumes general position.  Sites at exactly equal
distance from ``q`` are processed as one group — every group member's
``G`` includes the others' weights (the literal ``<=`` of Eq. (2)) — and on
such degenerate inputs the vector may sum to less than 1; callers that need
general position can perturb.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence, Tuple

from ..geometry.primitives import Point, dist
from ..uncertain.discrete import DiscreteUncertainPoint

__all__ = [
    "quantification_vector",
    "quantification_vector_naive",
    "sweep_quantification",
    "sweep_site_probabilities",
]

#: A site prepared for the sweep: (distance-from-query, parent index, weight).
SweepSite = Tuple[float, int, float]


def sweep_site_probabilities(sites: Sequence[SweepSite],
                             parent_site_totals: Sequence[int],
                             tie_tol: float = 0.0) -> List[float]:
    """Per-*site* NN probabilities ``eta(p; q)`` (Eq. 10), aligned with input.

    ``eta(p_is; q) = w_is * prod_{j != i} (1 - G_{q,j}(d(p_is, q)))`` — the
    probability that the specific location ``p_is`` is the realized nearest
    neighbor.  ``pi_i(q)`` is the sum of these over ``P_i`` (Eq. 11);
    the Remark-(i) reproduction (benchmark E14) compares individual
    ``eta`` values, which is why they are exposed separately.
    """
    _, per_site = _sweep(sites, parent_site_totals, tie_tol)
    return per_site


def sweep_quantification(sites: Sequence[SweepSite],
                         parent_site_totals: Sequence[int],
                         tie_tol: float = 0.0) -> List[float]:
    """Evaluate Eq. (2) contributions by a sorted sweep over *sites*.

    Parameters
    ----------
    sites:
        ``(distance, parent, weight)`` triples; need not be sorted, and may
        be a *subset* of a distribution's sites (the spiral-search
        estimator of Theorem 4.7 feeds exactly the ``m`` nearest sites).
    parent_site_totals:
        For each parent, how many sites its full distribution has.  A
        parent's survival factor is treated as *exactly zero* only when
        this many of its sites have been swept — which is what makes the
        truncated (spiral-search) sweep behave like the paper's
        ``hat-eta`` quantities.
    tie_tol:
        Distances within ``tie_tol`` (absolute) are grouped as ties.

    Returns the per-parent accumulated probabilities.
    """
    per_parent, _ = _sweep(sites, parent_site_totals, tie_tol)
    return per_parent


def _sweep(sites: Sequence[SweepSite],
           parent_site_totals: Sequence[int],
           tie_tol: float) -> Tuple[List[float], List[float]]:
    """Shared sweep core: per-parent sums and per-site eta values."""
    n = len(parent_site_totals)
    order = sorted(range(len(sites)), key=lambda t: sites[t][0])
    survival = [1.0] * n            # f_j = 1 - G_j while sites remain
    seen_counts = [0] * n
    zero_count = 0
    prod_nonzero = 1.0              # product of the non-zero f_j
    result = [0.0] * n
    per_site = [0.0] * len(sites)

    idx = 0
    total = len(order)
    while idx < total:
        # Collect the tie group.
        group_end = idx + 1
        while group_end < total and \
                sites[order[group_end]][0] - sites[order[idx]][0] <= tie_tol:
            group_end += 1
        group = order[idx:group_end]
        # Phase 1: absorb the whole group into the survival factors.
        for sid in group:
            _, parent, weight = sites[sid]
            old = survival[parent]
            seen_counts[parent] += 1
            if seen_counts[parent] >= parent_site_totals[parent]:
                new = 0.0
            else:
                new = old - weight
                # Guard against float underflow on nearly-exhausted parents:
                # real arithmetic keeps partial sums strictly below 1, so a
                # non-positive remainder can only be rounding noise.
                if new < 1e-15:
                    new = 0.0
            survival[parent] = new
            if old > 0.0 and new == 0.0:
                zero_count += 1
                prod_nonzero /= old
            elif old > 0.0:
                prod_nonzero *= new / old
        # Phase 2: contributions with the own-parent factor divided out.
        for sid in group:
            _, parent, weight = sites[sid]
            f_own = survival[parent]
            if zero_count == 0:
                others = prod_nonzero / f_own if f_own > 0.0 else 0.0
            elif zero_count == 1 and f_own == 0.0:
                others = prod_nonzero
            else:
                others = 0.0
            if others:
                eta = weight * others
                per_site[sid] = eta
                result[parent] += eta
        if zero_count >= 2:
            break  # every further contribution is zero
        idx = group_end
    return result, per_site


def quantification_vector(points: Sequence[DiscreteUncertainPoint],
                          q: Point, tie_tol: float = 0.0) -> List[float]:
    """Exact ``(pi_1(q), ..., pi_n(q))`` for discrete uncertain points."""
    sites: List[SweepSite] = []
    for i, p in enumerate(points):
        for site, w in p.sites_with_weights():
            sites.append((dist(q, site), i, w))
    totals = [p.k for p in points]
    return sweep_quantification(sites, totals, tie_tol)


def quantification_vector_naive(points: Sequence[DiscreteUncertainPoint],
                                q: Point) -> List[float]:
    """Direct transcription of Eq. (2); the test oracle for the sweep.

    Per parent ``j`` the distances are sorted once and ``G_{q,j}(r)`` is a
    binary search over the prefix-weight table.
    """
    n = len(points)
    # Per-parent sorted distance / cumulative weight tables.
    tables: List[Tuple[List[float], List[float]]] = []
    for p in points:
        pairs = sorted((dist(q, site), w) for site, w in p.sites_with_weights())
        ds = [d for d, _ in pairs]
        acc: List[float] = []
        run = 0.0
        for _, w in pairs:
            run += w
            acc.append(run)
        tables.append((ds, acc))

    def cdf(j: int, r: float) -> float:
        ds, acc = tables[j]
        pos = bisect.bisect_right(ds, r)
        return acc[pos - 1] if pos else 0.0

    out: List[float] = []
    for i, p in enumerate(points):
        total = 0.0
        for site, w in p.sites_with_weights():
            r = dist(q, site)
            prod = 1.0
            for j in range(n):
                if j == i:
                    continue
                prod *= 1.0 - cdf(j, r)
                if prod == 0.0:
                    break
            total += w * prod
        out.append(total)
    return out
