"""The Monte-Carlo quantification structure (Section 4.2, Theorems 4.3/4.5).

Preprocessing runs ``s`` rounds; round ``j`` instantiates every uncertain
point once (``R_j = {r_j1, ..., r_jn}``) and indexes the instantiation for
NN queries.  A query finds, in each round, which instantiated point is the
nearest neighbor and increments its counter; ``pi_hat_i(q) = c_i / s``.

The paper builds a Voronoi diagram + point location per round; finding the
NN of ``q`` among ``R_j`` is an ``argmin`` over that round's instantiated
sites.  All rounds are stored as one contiguous ``(s, n, 2)`` tensor and
the argmin/counting runs vectorized across rounds — and, via
:meth:`MonteCarloQuantifier.estimate_matrix`, across whole query batches
at once (rounds x queries in a few NumPy passes).  The scalar
:meth:`~MonteCarloQuantifier.estimate` is the single-row special case of
the same code path, so scalar and batch estimates agree exactly.

Round budget (Theorem 4.3): with ``|Q| = O((nk)^4)`` distinct cells,

    s = ceil( (1 / 2 eps^2) * ln(2 n |Q| / delta) )

guarantees ``|pi_hat - pi| <= eps`` for *all* points and *all* queries
simultaneously with probability ``>= 1 - delta``.  For a single fixed
query, ``s = ceil((1 / 2 eps^2) ln(2 n / delta))`` suffices (plain
Chernoff + union over the ``n`` counters); both budgets are exposed.

Continuous distributions are handled per Theorem 4.5 by sampling each pdf
into a discrete surrogate first (:func:`discretize_continuous`); Lemma 4.4
bounds the induced bias by ``n * alpha`` when each surrogate has
``k(alpha) = O(alpha^-2 log(1/delta'))`` sites.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.primitives import Point
from ..uncertain.base import UncertainPoint
from ..uncertain.discrete import DiscreteUncertainPoint

__all__ = [
    "MonteCarloQuantifier",
    "rounds_for_single_query",
    "rounds_for_all_queries",
    "discretize_continuous",
    "continuous_sample_complexity",
]


def rounds_for_single_query(epsilon: float, delta: float, n: int) -> int:
    """Rounds ensuring ±epsilon w.p. 1-delta for one fixed query point."""
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ValueError("epsilon and delta must lie in (0, 1)")
    return max(1, math.ceil(math.log(2.0 * n / delta) / (2.0 * epsilon * epsilon)))


def rounds_for_all_queries(epsilon: float, delta: float, n: int, k: int) -> int:
    """Theorem 4.3 budget: ±epsilon for *all* queries simultaneously.

    Uses ``|Q| = (nk)^4`` representative queries — one per cell of the
    probabilistic Voronoi diagram (Lemma 4.1), with the constant taken
    as 1.
    """
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ValueError("epsilon and delta must lie in (0, 1)")
    big_n = max(2, n * k)
    cells = float(big_n) ** 4
    return max(1, math.ceil(math.log(2.0 * n * cells / delta)
                            / (2.0 * epsilon * epsilon)))


def continuous_sample_complexity(epsilon: float, delta: float, n: int,
                                 c: float = 0.5) -> int:
    """Theorem 4.5 surrogate size ``k(alpha)`` with ``alpha = eps/2n``.

    ``k(alpha) = c / alpha^2 * log(1/delta')`` with ``delta' = delta/2n``.
    This is the *theoretical* bound — ``O((n^2/eps^2) log(n/delta))`` —
    which is extremely conservative; the benchmark (E12) shows far smaller
    surrogates already achieve the target error in practice.
    """
    alpha = epsilon / (2.0 * n)
    delta_prime = delta / (2.0 * n)
    return max(1, math.ceil(c / (alpha * alpha) * math.log(1.0 / delta_prime)))


def discretize_continuous(point: UncertainPoint, k: int,
                          seed: int = 0) -> DiscreteUncertainPoint:
    """Sample a continuous pdf into a uniform discrete surrogate.

    The Theorem 4.5 reduction: ``k`` i.i.d. draws, each with weight
    ``1/k``.  Coincident draws are merged (their weights add) so the
    surrogate satisfies the distinct-sites requirement.
    """
    rng = random.Random(seed)
    counts: Dict[Point, int] = {}
    for _ in range(k):
        p = point.sample(rng)
        counts[p] = counts.get(p, 0) + 1
    sites = list(counts.keys())
    weights = [c / k for c in counts.values()]
    return DiscreteUncertainPoint(sites, weights, normalize=False)


class MonteCarloQuantifier:
    """The Section 4.2 data structure: ``s`` instantiations as one tensor.

    Parameters
    ----------
    points:
        Uncertain points (any model — only ``sample`` is used).
    epsilon, delta:
        Target additive error and failure probability.
    rounds:
        Explicit round count; defaults to the single-query budget
        (pass :func:`rounds_for_all_queries` output for the uniform
        guarantee — it is larger by the ``log |Q|`` term).
    seed:
        Seed for the instantiation RNG (reproducible preprocessing).
    """

    def __init__(self, points: Sequence[UncertainPoint],
                 epsilon: float = 0.1, delta: float = 0.05,
                 rounds: Optional[int] = None, seed: int = 0) -> None:
        if not points:
            raise ValueError("need at least one uncertain point")
        self.points = list(points)
        self.epsilon = epsilon
        self.delta = delta
        self.rounds = rounds if rounds is not None else \
            rounds_for_single_query(epsilon, delta, len(points))
        rng = random.Random(seed)
        self.instantiations = np.array(
            [[p.sample(rng) for p in self.points]
             for _ in range(self.rounds)], dtype=np.float64)  # (s, n, 2)

    # ------------------------------------------------------------------
    def estimate_matrix(self, queries) -> np.ndarray:
        """Dense ``(m, n)`` estimate matrix for an ``(m, 2)`` query array.

        One vectorized pass per chunk: squared distances from every query
        to every instantiated site, an argmin across points per (query,
        round) cell, and a bincount of the winners.  Round winners tie
        toward the smallest index (the scalar path shares this code, so
        the tie rule is uniform everywhere).
        """
        q = np.asarray(queries, dtype=np.float64)
        if q.size == 0:
            q = q.reshape(0, 2)
        elif q.ndim != 2 or q.shape[1] != 2:
            raise ValueError("queries must be an (m, 2) array of points")
        m = len(q)
        s, n, _ = self.instantiations.shape
        out = np.empty((m, n), dtype=np.float64)
        if m == 0:
            return out
        sx = self.instantiations[:, :, 0]
        sy = self.instantiations[:, :, 1]
        # Chunk queries so the (chunk, s, n) distance tensor stays
        # cache-resident — large chunks go memory-bandwidth-bound.
        step = max(1, (1 << 18) // max(1, s * n))
        # One scratch pair for every chunk: the round tensor's work slices
        # are the hot allocation of a large batch, so reuse them instead
        # of paying an allocator round-trip (and page faults) per chunk.
        dx_buf = np.empty((min(step, m), s, n), dtype=np.float64)
        dy_buf = np.empty_like(dx_buf)
        for lo in range(0, m, step):
            qc = q[lo:lo + step]
            mc = len(qc)
            dx = np.subtract(sx[None, :, :], qc[:, None, None, 0],
                             out=dx_buf[:mc])
            dy = np.subtract(sy[None, :, :], qc[:, None, None, 1],
                             out=dy_buf[:mc])
            np.multiply(dx, dx, out=dx)
            np.multiply(dy, dy, out=dy)
            dx += dy
            winners = np.argmin(dx, axis=2)  # (chunk, s)
            flat = winners + n * np.arange(mc, dtype=np.intp)[:, None]
            counts = np.bincount(flat.ravel(), minlength=mc * n)
            out[lo:lo + step] = counts.reshape(mc, n) / self.rounds
        return out

    def estimate_batch(self, queries) -> List[Dict[int, float]]:
        """Sparse ``{i: pi_hat_i}`` dicts (zeros omitted), one per query."""
        mat = self.estimate_matrix(queries)
        return [{int(i): float(row[i]) for i in np.flatnonzero(row)}
                for row in mat]

    def estimate(self, q: Point) -> Dict[int, float]:
        """Sparse estimates ``{i: pi_hat_i(q)}`` (zeros omitted).

        At most ``rounds`` distinct indices can appear — matching the
        paper's observation that at most ``1/eps`` points can have
        ``pi_i(q) > eps``.
        """
        return self.estimate_batch([q])[0]

    def estimate_vector(self, q: Point) -> List[float]:
        """Dense estimate vector of length ``n``."""
        return self.estimate_matrix([q])[0].tolist()

    def space_cost(self) -> int:
        """Stored sites across all rounds (``s * n``, Theorem 4.3 space)."""
        return self.rounds * len(self.points)
