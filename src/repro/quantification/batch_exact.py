"""Vectorized exact quantification: the Eq. (2) sweep for query batches.

:mod:`.exact_discrete` answers one query with an ``O(N log N)`` sweep over
all ``N = sum k_i`` sites in pure Python.  This module answers an
``(m, 2)`` array of queries through the *same* sweep, vectorized across
queries: one ``(mc, N)`` distance matrix per chunk (chunks sized to bound
memory), a stable per-row argsort, and then the sweep step loop — served
by a pluggable kernel provider (:mod:`repro.spatial.kernels`): the NumPy
oracle advances all still-active rows one sorted *position* per handful
of array passes, the native provider runs the identical expression
sequence row-scalar in compiled C.

The step loop reproduces the scalar sweep's arithmetic operation for
operation, which is what makes the results **bitwise identical** to
``quantification_vector``:

* distances use the library's shared ``sqrt(dx*dx + dy*dy)`` form, and the
  stable argsort orders exact-equal distances by flattened site index —
  the same order the scalar code's stable ``sorted`` produces;
* per-parent survival factors update by the same sequential subtraction
  (``new = old - w``), with the same count-based *exact zero* once a
  parent's sites are exhausted and the same ``1e-15`` underflow clamp;
* the running product of non-zero factors updates through the same
  ``prod /= old`` / ``prod *= new / old`` expressions, with the explicit
  zero counter deciding the ``prod_{j != parent}`` recovery;
* tie groups are anchored at their first member (``d - d_anchor <=
  tie_tol``) and fully absorbed before any member contributes, matching
  the documented tie-group convention on degenerate inputs.

Rows retire as soon as their zero counter reaches two (every further
contribution is exactly zero — the scalar sweep breaks at the same
moment), and the active set is compacted periodically, so the loop length
tracks how quickly the two nearest parents exhaust rather than ``N``.

Because of that early exit, the full per-row sort is usually wasted work:
the sweep consults only a short sorted prefix.  The engine therefore
partitions each row to its ``K`` nearest sites (``argpartition``), orders
just that prefix — ``lexsort`` on (distance, flattened site index), which
reproduces the stable full sort exactly — and sweeps it without flushing
the final tie group.  A row that retires inside the prefix provably
computed the full sweep's answer (every complete group it flushed is
identical, and the truncated final group would have contributed exactly
zero); the rare rows still live at the prefix end are re-swept with a
``4x`` wider prefix, falling back to the full sort at ``K >= N``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..obs.metrics import ENGINE
from ..spatial.kernels import get_provider
from ..uncertain.discrete import DiscreteUncertainPoint

__all__ = ["BatchExactQuantifier"]

# Target element count of the per-chunk (mc, N) distance matrix.  Larger
# than the batch engine's work-matrix budget: the step loop's Python-level
# overhead amortizes over the chunk's rows, and an 8 MB matrix is still a
# single pass of streaming reductions.
_CHUNK_ELEMENTS = 1 << 20
# First sorted-prefix width tried per chunk; widened 4x for rows whose
# sweep is still live at the prefix end, up to the full site count.
_PREFIX_START = 256


class BatchExactQuantifier:
    """Exact ``(pi_1(q), ..., pi_n(q))`` for whole query batches.

    Parameters
    ----------
    points:
        Discrete uncertain points (the exact sweep is defined for finite
        site sets; continuous models go through quadrature or estimators).
    tie_tol:
        Distances within ``tie_tol`` of a group's first member are
        processed as one tie group, exactly as in
        :func:`~repro.quantification.exact_discrete.sweep_quantification`.
    kernel:
        Kernel provider for the distance matrix and the sweep step loop:
        ``"auto"`` (default), ``"native"``, or ``"numpy"`` — see
        :mod:`repro.spatial.kernels`.  Providers are bitwise-identical,
        so the choice is purely operational.
    """

    def __init__(self, points: Sequence[DiscreteUncertainPoint],
                 tie_tol: float = 0.0, kernel: str = "auto") -> None:
        if not points:
            raise ValueError("batch quantifier needs at least one point")
        for p in points:
            if not isinstance(p, DiscreteUncertainPoint):
                raise TypeError(
                    "exact batch quantification requires discrete "
                    f"distributions, got {type(p).__name__}")
        self.n = len(points)
        self.tie_tol = float(tie_tol)
        get_provider(kernel)  # validate the name (and fail fast on an
        # explicit "native" request the host cannot serve)
        self.kernel = kernel
        xs: List[float] = []
        ys: List[float] = []
        parents: List[int] = []
        weights: List[float] = []
        # Flattened parent-major, site-order-within-parent — the order the
        # scalar sweep builds its site list in, which the stable argsort
        # below preserves inside tie groups.
        for i, p in enumerate(points):
            for (x, y), w in p.sites_with_weights():
                xs.append(x)
                ys.append(y)
                parents.append(i)
                weights.append(w)
        self._sx = np.array(xs, dtype=np.float64)
        self._sy = np.array(ys, dtype=np.float64)
        self._parent = np.array(parents, dtype=np.intp)
        self._weight = np.array(weights, dtype=np.float64)
        self._totals = np.array([p.k for p in points], dtype=np.int64)
        self.total_sites = len(parents)

    # ------------------------------------------------------------------
    @staticmethod
    def _as_queries(queries) -> np.ndarray:
        from ..spatial.batch import as_query_array

        return as_query_array(queries)

    def chunk_size(self) -> int:
        """Query rows per memory-bounded work chunk."""
        return max(16, _CHUNK_ELEMENTS // max(1, self.total_sites))

    def matrix(self, queries) -> np.ndarray:
        """Dense ``(m, n)`` matrix of exact quantification vectors.

        Row ``j`` equals ``quantification_vector(points, queries[j],
        tie_tol)`` bitwise.  Chunk boundaries never change a row (every
        reduction is per query), so any chunking concatenates identically.
        """
        q = self._as_queries(queries)
        m = len(q)
        out = np.empty((m, self.n), dtype=np.float64)
        step = self.chunk_size()
        for lo in range(0, m, step):
            out[lo:lo + step] = self._chunk_matrix(q[lo:lo + step])
        return out

    def quantification_vectors(self, queries) -> List[List[float]]:
        """Full probability vectors, one list per query row.

        Row ``j`` equals ``quantification_vector(points, queries[j],
        tie_tol)`` bitwise — the dense-list twin of :meth:`batch` for
        callers that want scalar-typed rows.  The ``V_Pr`` builder labels
        its ``O(N^4)`` arrangement faces through the same :meth:`matrix`
        machinery (one chunked pass instead of per-face scalar sweeps).
        """
        return self.matrix(queries).tolist()

    def batch(self, queries) -> List[Dict[int, float]]:
        """Sparse ``{i: pi_i(q)}`` dicts (zeros omitted), one per query.

        The same container :meth:`PNNIndex.quantify(method="exact")
        <repro.core.index.PNNIndex.quantify>` returns.
        """
        mat = self.matrix(queries)
        return [{int(i): float(row[i]) for i in np.flatnonzero(row > 0.0)}
                for row in mat]

    # ------------------------------------------------------------------
    # The vectorized sweep core.
    # ------------------------------------------------------------------
    def _chunk_matrix(self, qc: np.ndarray) -> np.ndarray:
        mc = len(qc)
        result = np.zeros((mc, self.n), dtype=np.float64)
        if mc == 0:
            return result
        big_n = self.total_sites
        provider = get_provider(self.kernel)
        # (mc, N) distances in the shared sqrt(dx*dx + dy*dy) form.
        d = provider.distance_matrix(qc[:, 0], qc[:, 1],
                                     self._sx, self._sy)
        pending = np.arange(mc, dtype=np.intp)
        width = min(big_n, _PREFIX_START)
        ENGINE.inc("exact_sweep.chunks")
        first_pass = True
        while pending.size:
            if not first_pass:
                # Rows still live at the prefix end: the sweep re-runs
                # them 4x wider (observable as prefix pressure).
                ENGINE.inc("exact_sweep.prefix_widenings")
            first_pass = False
            dsub = d[pending] if len(pending) < mc else d
            if width >= big_n:
                order = np.argsort(dsub, axis=1, kind="stable")
                ds = np.take_along_axis(dsub, order, axis=1)
            else:
                part = np.argpartition(dsub, width - 1, axis=1)[:, :width]
                dpref = np.take_along_axis(dsub, part, axis=1)
                # Primary key distance, secondary flattened site index:
                # exactly the stable full sort, restricted to the prefix.
                rank = np.lexsort((part, dpref), axis=-1)
                order = np.take_along_axis(part, rank, axis=1)
                ds = np.take_along_axis(dpref, rank, axis=1)
            res, done = provider.sweep_eq2(ds, self._parent[order],
                                           self._weight[order],
                                           self._totals, self.n,
                                           self.tie_tol,
                                           final=width >= big_n)
            finished = np.flatnonzero(done)
            ENGINE.inc("exact_sweep.rows_retired", int(finished.size))
            result[pending[finished]] = res[finished]
            pending = pending[~done]
            width = min(big_n, width * 4)
        return result

    # The sweep step loop itself lives behind the kernel-provider
    # protocol (repro.spatial.kernels): the NumPy implementation —
    # this module's original ``_sweep``, verbatim — is the bitwise
    # oracle, and the native provider replays the identical expression
    # sequence row-scalar in C.  Orchestration above (chunk planning,
    # prefix ordering, widening, result scatter) is shared by both.
