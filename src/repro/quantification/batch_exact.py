"""Vectorized exact quantification: the Eq. (2) sweep for query batches.

:mod:`.exact_discrete` answers one query with an ``O(N log N)`` sweep over
all ``N = sum k_i`` sites in pure Python.  This module answers an
``(m, 2)`` array of queries through the *same* sweep, vectorized across
queries: one ``(mc, N)`` distance matrix per chunk (chunks sized to bound
memory), a stable per-row argsort, and then a loop over sorted *positions*
where every step performs a handful of NumPy passes over all still-active
query rows.

The step loop reproduces the scalar sweep's arithmetic operation for
operation, which is what makes the results **bitwise identical** to
``quantification_vector``:

* distances use the library's shared ``sqrt(dx*dx + dy*dy)`` form, and the
  stable argsort orders exact-equal distances by flattened site index —
  the same order the scalar code's stable ``sorted`` produces;
* per-parent survival factors update by the same sequential subtraction
  (``new = old - w``), with the same count-based *exact zero* once a
  parent's sites are exhausted and the same ``1e-15`` underflow clamp;
* the running product of non-zero factors updates through the same
  ``prod /= old`` / ``prod *= new / old`` expressions, with the explicit
  zero counter deciding the ``prod_{j != parent}`` recovery;
* tie groups are anchored at their first member (``d - d_anchor <=
  tie_tol``) and fully absorbed before any member contributes, matching
  the documented tie-group convention on degenerate inputs.

Rows retire as soon as their zero counter reaches two (every further
contribution is exactly zero — the scalar sweep breaks at the same
moment), and the active set is compacted periodically, so the loop length
tracks how quickly the two nearest parents exhaust rather than ``N``.

Because of that early exit, the full per-row sort is usually wasted work:
the sweep consults only a short sorted prefix.  The engine therefore
partitions each row to its ``K`` nearest sites (``argpartition``), orders
just that prefix — ``lexsort`` on (distance, flattened site index), which
reproduces the stable full sort exactly — and sweeps it without flushing
the final tie group.  A row that retires inside the prefix provably
computed the full sweep's answer (every complete group it flushed is
identical, and the truncated final group would have contributed exactly
zero); the rare rows still live at the prefix end are re-swept with a
``4x`` wider prefix, falling back to the full sort at ``K >= N``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..obs.metrics import ENGINE
from ..uncertain.discrete import DiscreteUncertainPoint

__all__ = ["BatchExactQuantifier"]

# Target element count of the per-chunk (mc, N) distance matrix.  Larger
# than the batch engine's work-matrix budget: the step loop's Python-level
# overhead amortizes over the chunk's rows, and an 8 MB matrix is still a
# single pass of streaming reductions.
_CHUNK_ELEMENTS = 1 << 20
# The scalar sweep's underflow clamp for nearly-exhausted parents.
_UNDERFLOW = 1e-15
# Compaction policy: rewrite the active-row state once at least this many
# rows are done *and* they are at least half the active set.
_COMPACT_MIN = 32
# First sorted-prefix width tried per chunk; widened 4x for rows whose
# sweep is still live at the prefix end, up to the full site count.
_PREFIX_START = 256


class BatchExactQuantifier:
    """Exact ``(pi_1(q), ..., pi_n(q))`` for whole query batches.

    Parameters
    ----------
    points:
        Discrete uncertain points (the exact sweep is defined for finite
        site sets; continuous models go through quadrature or estimators).
    tie_tol:
        Distances within ``tie_tol`` of a group's first member are
        processed as one tie group, exactly as in
        :func:`~repro.quantification.exact_discrete.sweep_quantification`.
    """

    def __init__(self, points: Sequence[DiscreteUncertainPoint],
                 tie_tol: float = 0.0) -> None:
        if not points:
            raise ValueError("batch quantifier needs at least one point")
        for p in points:
            if not isinstance(p, DiscreteUncertainPoint):
                raise TypeError(
                    "exact batch quantification requires discrete "
                    f"distributions, got {type(p).__name__}")
        self.n = len(points)
        self.tie_tol = float(tie_tol)
        xs: List[float] = []
        ys: List[float] = []
        parents: List[int] = []
        weights: List[float] = []
        # Flattened parent-major, site-order-within-parent — the order the
        # scalar sweep builds its site list in, which the stable argsort
        # below preserves inside tie groups.
        for i, p in enumerate(points):
            for (x, y), w in p.sites_with_weights():
                xs.append(x)
                ys.append(y)
                parents.append(i)
                weights.append(w)
        self._sx = np.array(xs, dtype=np.float64)
        self._sy = np.array(ys, dtype=np.float64)
        self._parent = np.array(parents, dtype=np.intp)
        self._weight = np.array(weights, dtype=np.float64)
        self._totals = np.array([p.k for p in points], dtype=np.int64)
        self.total_sites = len(parents)

    # ------------------------------------------------------------------
    @staticmethod
    def _as_queries(queries) -> np.ndarray:
        from ..spatial.batch import as_query_array

        return as_query_array(queries)

    def chunk_size(self) -> int:
        """Query rows per memory-bounded work chunk."""
        return max(16, _CHUNK_ELEMENTS // max(1, self.total_sites))

    def matrix(self, queries) -> np.ndarray:
        """Dense ``(m, n)`` matrix of exact quantification vectors.

        Row ``j`` equals ``quantification_vector(points, queries[j],
        tie_tol)`` bitwise.  Chunk boundaries never change a row (every
        reduction is per query), so any chunking concatenates identically.
        """
        q = self._as_queries(queries)
        m = len(q)
        out = np.empty((m, self.n), dtype=np.float64)
        step = self.chunk_size()
        for lo in range(0, m, step):
            out[lo:lo + step] = self._chunk_matrix(q[lo:lo + step])
        return out

    def quantification_vectors(self, queries) -> List[List[float]]:
        """Full probability vectors, one list per query row.

        Row ``j`` equals ``quantification_vector(points, queries[j],
        tie_tol)`` bitwise — the dense-list twin of :meth:`batch` for
        callers that want scalar-typed rows.  The ``V_Pr`` builder labels
        its ``O(N^4)`` arrangement faces through the same :meth:`matrix`
        machinery (one chunked pass instead of per-face scalar sweeps).
        """
        return self.matrix(queries).tolist()

    def batch(self, queries) -> List[Dict[int, float]]:
        """Sparse ``{i: pi_i(q)}`` dicts (zeros omitted), one per query.

        The same container :meth:`PNNIndex.quantify(method="exact")
        <repro.core.index.PNNIndex.quantify>` returns.
        """
        mat = self.matrix(queries)
        return [{int(i): float(row[i]) for i in np.flatnonzero(row > 0.0)}
                for row in mat]

    # ------------------------------------------------------------------
    # The vectorized sweep core.
    # ------------------------------------------------------------------
    def _chunk_matrix(self, qc: np.ndarray) -> np.ndarray:
        mc = len(qc)
        result = np.zeros((mc, self.n), dtype=np.float64)
        if mc == 0:
            return result
        big_n = self.total_sites
        # (mc, N) distances in the shared sqrt(dx*dx + dy*dy) form.
        dx = qc[:, 0:1] - self._sx[None, :]
        np.multiply(dx, dx, out=dx)
        dy = qc[:, 1:2] - self._sy[None, :]
        np.multiply(dy, dy, out=dy)
        dx += dy
        d = np.sqrt(dx, out=dx)
        pending = np.arange(mc, dtype=np.intp)
        width = min(big_n, _PREFIX_START)
        ENGINE.inc("exact_sweep.chunks")
        first_pass = True
        while pending.size:
            if not first_pass:
                # Rows still live at the prefix end: the sweep re-runs
                # them 4x wider (observable as prefix pressure).
                ENGINE.inc("exact_sweep.prefix_widenings")
            first_pass = False
            dsub = d[pending] if len(pending) < mc else d
            if width >= big_n:
                order = np.argsort(dsub, axis=1, kind="stable")
                ds = np.take_along_axis(dsub, order, axis=1)
            else:
                part = np.argpartition(dsub, width - 1, axis=1)[:, :width]
                dpref = np.take_along_axis(dsub, part, axis=1)
                # Primary key distance, secondary flattened site index:
                # exactly the stable full sort, restricted to the prefix.
                rank = np.lexsort((part, dpref), axis=-1)
                order = np.take_along_axis(part, rank, axis=1)
                ds = np.take_along_axis(dpref, rank, axis=1)
            res, done = self._sweep(ds, self._parent[order],
                                    self._weight[order],
                                    final=width >= big_n)
            finished = np.flatnonzero(done)
            ENGINE.inc("exact_sweep.rows_retired", int(finished.size))
            result[pending[finished]] = res[finished]
            pending = pending[~done]
            width = min(big_n, width * 4)
        return result

    def _sweep(self, ds: np.ndarray, pp: np.ndarray, pw: np.ndarray,
               final: bool):
        """Run the vectorized sweep over prefix-ordered site columns.

        ``ds`` / ``pp`` / ``pw`` are ``(r, K)`` sorted distance / parent /
        weight arrays.  Returns ``(result_rows, done)`` — ``done[j]`` is
        true when row ``j``'s answer is complete (its zero counter reached
        two inside the prefix, or ``final`` allowed the last tie group to
        flush because the prefix is the whole site set).
        """
        r, width = ds.shape
        n = self.n
        result = np.zeros((r, n), dtype=np.float64)
        rows = np.arange(r, dtype=np.intp)        # original row ids
        ar = np.arange(r, dtype=np.intp)          # active-row iota
        survival = np.ones((r, n), dtype=np.float64)
        seen = np.zeros((r, n), dtype=np.int64)
        zero_count = np.zeros(r, dtype=np.int64)
        prod = np.ones(r, dtype=np.float64)
        anchor = np.empty(r, dtype=np.float64)    # first distance of group
        glen = np.zeros(r, dtype=np.int64)        # members absorbed so far
        finished = np.zeros(r, dtype=bool)

        def contribute(sel: np.ndarray, pos: int) -> None:
            """One phase-2 contribution per selected row, from *pos*."""
            ps = pp[sel, pos]
            f_own = survival[sel, ps]
            zc = zero_count[sel]
            pr = prod[sel]
            f_safe = np.where(f_own > 0.0, f_own, 1.0)
            others = np.where(
                zc == 0,
                np.where(f_own > 0.0, pr / f_safe, 0.0),
                np.where((zc == 1) & (f_own == 0.0), pr, 0.0))
            # eta = 0 rows scatter +0.0, a float no-op, so no filter.
            result[rows[sel], ps] += pw[sel, pos] * others

        def flush(mask: np.ndarray, end: int) -> None:
            """Phase 2 for groups spanning positions [end - glen, end)."""
            idx = np.flatnonzero(mask)
            if not idx.size:
                return
            g = glen[idx]
            gmax = int(g.max())
            if gmax == 1:                          # general position
                contribute(idx, end - 1)
                return
            # Offsets descend so positions ascend — the scalar phase-2
            # iteration (and thus the result accumulation) order.
            for o in range(gmax, 0, -1):
                contribute(idx[g >= o], end - o)

        act = r
        for t in range(width):
            dt = ds[:, t]
            if t == 0:
                start = np.ones(act, dtype=bool)
            else:
                start = dt - anchor > self.tie_tol
                if start.any():
                    flush(start, t)
            anchor[start] = dt[start]
            glen[start] = 0
            # Phase 1: absorb every row's t-th nearest site.
            p_t = pp[:, t]
            old = survival[ar, p_t]
            cnt = seen[ar, p_t] + 1
            seen[ar, p_t] = cnt
            new = old - pw[:, t]
            new[new < _UNDERFLOW] = 0.0
            new[cnt >= self._totals[p_t]] = 0.0
            survival[ar, p_t] = new
            # The scalar case analysis, as in-place masked updates (the
            # same expressions — prod / old and prod * (new / old) — on
            # exactly the affected lanes).
            shrunk = np.flatnonzero((old > 0.0) & (new > 0.0))
            prod[shrunk] *= new[shrunk] / old[shrunk]
            zeroed = np.flatnonzero((old > 0.0) & (new == 0.0))
            if zeroed.size:
                prod[zeroed] /= old[zeroed]
                zero_count[zeroed] += 1
            glen += 1
            # Retire finished rows: with two exhausted parents every
            # further contribution is exactly zero (including the pending
            # group's — its phase 2 would run with zero_count >= 2).
            done = zero_count >= 2
            nd = int(done.sum())
            if nd == act:
                finished[rows] = True
                act = 0
                break
            if nd >= _COMPACT_MIN and 2 * nd >= act:
                keep = ~done
                finished[rows[done]] = True
                rows = rows[keep]
                ds = ds[keep]
                pp = pp[keep]
                pw = pw[keep]
                survival = survival[keep]
                seen = seen[keep]
                zero_count = zero_count[keep]
                prod = prod[keep]
                anchor = anchor[keep]
                glen = glen[keep]
                act = len(rows)
                ar = ar[:act]
        if act:
            live = zero_count < 2
            finished[rows[~live]] = True
            if final:
                flush(live, width)
                finished[rows] = True
        return result, finished
