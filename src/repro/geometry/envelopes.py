"""Lower envelopes of polar curves (the Lemma 2.2 machinery).

The paper computes each curve ``gamma_i`` as the lower envelope, in polar
coordinates around ``c_i``, of the ``n - 1`` hyperbola branches
``gamma_ij``.  Because each pair of branches crosses at most twice, the
envelope is a Davenport–Schinzel sequence of order 2 with at most ``2n``
breakpoints, computable in ``O(n log n)`` by divide and conquer — which is
exactly what :func:`lower_envelope` implements.

Representation: a :class:`PiecewisePolarCurve` covers the full angle range
``[0, 2*pi]`` with a sorted list of :class:`Arc` objects.  Each arc either
references the curve attaining the minimum on it, or ``None`` where no curve
is defined (the envelope is ``+inf`` there — directions in which the region
``R_i = {x : delta_i(x) < Delta(x)}`` is unbounded).

All pairwise intersections are obtained in closed form from
:func:`repro.geometry.hyperbola.intersect_same_focus`; the merge itself only
compares radii at interval midpoints, so no iterative root finding is ever
performed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .hyperbola import PolarHyperbola, intersect_same_focus
from .primitives import EPS, TWO_PI, Point

__all__ = ["Arc", "PiecewisePolarCurve", "lower_envelope"]

#: Angular slack for arc bookkeeping.  Arcs shorter than this are dropped.
_ANGLE_TOL = 1e-12


@dataclass(frozen=True)
class Arc:
    """An angular interval ``[start, end]`` owned by one curve (or none).

    ``curve is None`` encodes the envelope being ``+inf`` on the arc.
    Arcs never wrap: ``0 <= start <= end <= 2*pi``.
    """

    start: float
    end: float
    curve: Optional[PolarHyperbola]

    @property
    def width(self) -> float:
        """Angular width of the arc."""
        return self.end - self.start

    @property
    def midpoint(self) -> float:
        """Angle at the middle of the arc."""
        return 0.5 * (self.start + self.end)


class PiecewisePolarCurve:
    """A piecewise curve ``theta -> rho`` covering ``[0, 2*pi]``.

    Produced by :func:`lower_envelope`.  The arcs are sorted, contiguous and
    cover the full circle; consecutive arcs always reference different
    curves (or alternate between a curve and ``None``).
    """

    def __init__(self, focus: Point, arcs: Sequence[Arc]) -> None:
        self.focus = focus
        self.arcs: List[Arc] = list(arcs)
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.arcs:
            raise ValueError("piecewise polar curve needs at least one arc")
        if abs(self.arcs[0].start) > 1e-9 or abs(self.arcs[-1].end - TWO_PI) > 1e-9:
            raise ValueError("arcs must cover [0, 2*pi]")
        for prev, cur in zip(self.arcs, self.arcs[1:]):
            if abs(prev.end - cur.start) > 1e-9:
                raise ValueError("arcs must be contiguous")

    # ------------------------------------------------------------------
    def piece_at(self, theta: float) -> Optional[PolarHyperbola]:
        """The curve attaining the envelope at angle *theta* (binary search)."""
        theta = theta % TWO_PI
        lo, hi = 0, len(self.arcs) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.arcs[mid].end < theta:
                lo = mid + 1
            else:
                hi = mid
        return self.arcs[lo].curve

    def radius(self, theta: float) -> float:
        """Envelope value at *theta* (``inf`` where no curve is defined)."""
        piece = self.piece_at(theta)
        if piece is None:
            return math.inf
        return piece.radius(theta % TWO_PI)

    def point_at(self, theta: float) -> Point:
        """Cartesian point of the envelope at *theta*."""
        rho = self.radius(theta)
        if not math.isfinite(rho):
            raise ValueError(f"envelope is unbounded in direction {theta}")
        return (self.focus[0] + rho * math.cos(theta),
                self.focus[1] + rho * math.sin(theta))

    # ------------------------------------------------------------------
    def finite_arcs(self) -> List[Arc]:
        """The arcs on which the envelope is finite."""
        return [a for a in self.arcs if a.curve is not None]

    def is_everywhere_infinite(self) -> bool:
        """Whether no curve contributes anywhere (empty envelope)."""
        return all(a.curve is None for a in self.arcs)

    def breakpoints(self) -> List[Tuple[float, PolarHyperbola, PolarHyperbola]]:
        """Boundaries where two *finite* pieces meet.

        These are the paper's breakpoints of ``gamma_i`` (Lemma 2.2): points
        where the minimizing ``gamma_ij`` changes, i.e. where the witness
        disk of ``Delta`` swaps.  Transitions between a finite piece and an
        infinite gap are asymptote directions, not breakpoints, and are
        excluded.

        The wrap-around boundary at ``theta = 0 (= 2*pi)`` is counted once.
        Returns ``(theta, left_curve, right_curve)`` triples.
        """
        out: List[Tuple[float, PolarHyperbola, PolarHyperbola]] = []
        n = len(self.arcs)
        for idx in range(n):
            cur = self.arcs[idx]
            nxt = self.arcs[(idx + 1) % n]
            if idx == n - 1:
                # Wrap boundary: skip if it splits a single logical arc.
                if cur.curve is nxt.curve:
                    continue
            if cur.curve is not None and nxt.curve is not None \
                    and cur.curve is not nxt.curve:
                out.append((nxt.start % TWO_PI, cur.curve, nxt.curve))
        return out

    def breakpoint_points(self) -> List[Point]:
        """Cartesian coordinates of the breakpoints."""
        pts = []
        for theta, left, _right in self.breakpoints():
            rho = left.radius(theta)
            if not math.isfinite(rho):
                # Boundary angle can sit a hair outside the left piece's
                # domain after normalization; use the right piece instead.
                rho = _right_radius(self, theta)
            pts.append((self.focus[0] + rho * math.cos(theta),
                        self.focus[1] + rho * math.sin(theta)))
        return pts

    def complexity(self) -> int:
        """Number of finite arcs — the curve's combinatorial complexity."""
        return len(self.finite_arcs())


def _right_radius(curve: PiecewisePolarCurve, theta: float) -> float:
    nudged = (theta + 1e-12) % TWO_PI
    return curve.radius(nudged)


# ----------------------------------------------------------------------
# Envelope construction.
# ----------------------------------------------------------------------

def _single_curve_arcs(curve: PolarHyperbola) -> List[Arc]:
    """Arcs of the trivial envelope of one curve: its domain, gaps = None."""
    intervals = curve.domain_intervals()
    arcs: List[Arc] = []
    cursor = 0.0
    for lo, hi in sorted(intervals):
        lo = max(lo, 0.0)
        hi = min(hi, TWO_PI)
        if lo - cursor > _ANGLE_TOL:
            arcs.append(Arc(cursor, lo, None))
        if hi - lo > _ANGLE_TOL:
            arcs.append(Arc(max(lo, cursor), hi, curve))
        cursor = max(cursor, hi)
    if TWO_PI - cursor > _ANGLE_TOL:
        arcs.append(Arc(cursor, TWO_PI, None))
    if not arcs:
        arcs = [Arc(0.0, TWO_PI, None)]
    return _coalesce(arcs)


def _coalesce(arcs: List[Arc]) -> List[Arc]:
    """Merge consecutive arcs owned by the same curve, drop empty slivers."""
    out: List[Arc] = []
    for arc in arcs:
        if arc.width <= _ANGLE_TOL and out:
            # Extend the previous arc over the sliver.
            prev = out[-1]
            out[-1] = Arc(prev.start, arc.end, prev.curve)
            continue
        if out and out[-1].curve is arc.curve:
            prev = out[-1]
            out[-1] = Arc(prev.start, arc.end, prev.curve)
        else:
            out.append(arc)
    if not out:
        return [Arc(0.0, TWO_PI, None)]
    # Snap the cover to exactly [0, 2*pi].
    first, last = out[0], out[-1]
    out[0] = Arc(0.0, first.end, first.curve)
    out[-1] = Arc(out[-1].start, TWO_PI, last.curve)
    return out


def _winner(c1: Optional[PolarHyperbola], c2: Optional[PolarHyperbola],
            theta: float) -> Optional[PolarHyperbola]:
    """Which of two candidate pieces is lower at angle *theta*."""
    if c1 is None:
        return c2
    if c2 is None:
        return c1
    return c1 if c1.radius(theta) <= c2.radius(theta) else c2


def _merge(focus: Point, arcs1: List[Arc], arcs2: List[Arc]) -> List[Arc]:
    """Merge two envelopes into the envelope of their union of curves.

    Sweeps the circle over the union of both arc subdivisions; inside each
    elementary interval both inputs are single analytic pieces, so their
    crossings come from the closed-form same-focus intersection and the
    winner flips only at those angles.
    """
    boundaries = sorted({0.0, TWO_PI}
                        | {a.start for a in arcs1} | {a.end for a in arcs1}
                        | {a.start for a in arcs2} | {a.end for a in arcs2})
    out: List[Arc] = []
    env1 = PiecewisePolarCurve(focus, arcs1)
    env2 = PiecewisePolarCurve(focus, arcs2)
    for lo, hi in zip(boundaries, boundaries[1:]):
        if hi - lo <= _ANGLE_TOL:
            continue
        mid = 0.5 * (lo + hi)
        c1 = env1.piece_at(mid)
        c2 = env2.piece_at(mid)
        if c1 is None or c2 is None or c1 is c2:
            out.append(Arc(lo, hi, c1 if c2 is None else (c2 if c1 is None else c1)))
            continue
        cuts = [t for t in intersect_same_focus(c1, c2)
                if lo + _ANGLE_TOL < t < hi - _ANGLE_TOL]
        cuts.sort()
        prev = lo
        for cut in cuts + [hi]:
            if cut - prev > _ANGLE_TOL:
                m = 0.5 * (prev + cut)
                out.append(Arc(prev, cut, _winner(c1, c2, m)))
            prev = cut
    return _coalesce(out)


def lower_envelope(focus: Point,
                   curves: Sequence[PolarHyperbola]) -> PiecewisePolarCurve:
    """Lower envelope of same-focus polar curves by divide and conquer.

    Runs in ``O(m log m)`` merges for ``m`` curves; with the paper's
    pairwise-intersection bound of two this yields the ``O(n log n)``
    construction of Lemma 2.2.

    An empty input produces the everywhere-infinite envelope.
    """
    for c in curves:
        if c.focus != focus:
            raise ValueError("all envelope curves must share the focus")
    if not curves:
        return PiecewisePolarCurve(focus, [Arc(0.0, TWO_PI, None)])
    pieces: List[List[Arc]] = [_single_curve_arcs(c) for c in curves]
    while len(pieces) > 1:
        merged: List[List[Arc]] = []
        for i in range(0, len(pieces) - 1, 2):
            merged.append(_merge(focus, pieces[i], pieces[i + 1]))
        if len(pieces) % 2 == 1:
            merged.append(pieces[-1])
        pieces = merged
    return PiecewisePolarCurve(focus, pieces[0])
