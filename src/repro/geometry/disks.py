"""Circular disks: the canonical uncertainty region of the paper.

Section 2.1 of the paper models each uncertain point's support as a disk
``D_i`` of radius ``r_i`` centered at ``c_i``; the two distance functions

* ``Delta_i(q) = d(q, c_i) + r_i``  (max distance from q to the region) and
* ``delta_i(q) = max(d(q, c_i) - r_i, 0)``  (min distance)

drive everything in the nonzero-Voronoi machinery.  :class:`Disk` packages
those together with the tangency predicates used to validate arrangement
vertices ("touches from the outside / from the inside" in the paper's
terminology).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from .primitives import EPS, Point, dist, rel_eps


@dataclass(frozen=True)
class Disk:
    """A closed disk with center ``(cx, cy)`` and radius ``r >= 0``."""

    cx: float
    cy: float
    r: float

    def __post_init__(self) -> None:
        if self.r < 0:
            raise ValueError(f"disk radius must be non-negative, got {self.r}")

    @property
    def center(self) -> Point:
        """Center as an ``(x, y)`` tuple."""
        return (self.cx, self.cy)

    @property
    def area(self) -> float:
        """Area of the disk."""
        return math.pi * self.r * self.r

    # ------------------------------------------------------------------
    # Distance functions (the paper's Delta_i / delta_i).
    # ------------------------------------------------------------------
    def max_dist(self, q: Point) -> float:
        """``Delta(q)``: the largest distance from *q* to a point of the disk."""
        return dist(q, self.center) + self.r

    def min_dist(self, q: Point) -> float:
        """``delta(q)``: the smallest distance from *q* to a point of the disk.

        Zero when *q* lies inside the disk, matching the paper's
        ``max(d(q, c) - r, 0)``.
        """
        return max(dist(q, self.center) - self.r, 0.0)

    # ------------------------------------------------------------------
    # Point / disk relations.
    # ------------------------------------------------------------------
    def contains_point(self, q: Point, tol: float = EPS) -> bool:
        """Whether *q* lies in the closed disk (with tolerance)."""
        return dist(q, self.center) <= self.r + tol

    def contains_disk(self, other: "Disk", tol: float = EPS) -> bool:
        """Whether *other* lies entirely inside this disk (with tolerance)."""
        return dist(self.center, other.center) + other.r <= self.r + tol

    def intersects_disk(self, other: "Disk", tol: float = EPS) -> bool:
        """Whether the two closed disks share at least one point."""
        return dist(self.center, other.center) <= self.r + other.r + tol

    def interior_disjoint(self, other: "Disk", tol: float = EPS) -> bool:
        """Whether the two open disks are disjoint."""
        return dist(self.center, other.center) >= self.r + other.r - tol

    # ------------------------------------------------------------------
    # Tangency classification (paper, Section 2.1): a disk W "touches
    # D from the outside" when their boundaries meet but their interiors are
    # disjoint; W "touches D from the inside" when D lies inside W and the
    # boundaries meet.
    # ------------------------------------------------------------------
    def touches_externally(self, other: "Disk", tol: float | None = None) -> bool:
        """Whether this disk and *other* are externally tangent."""
        d = dist(self.center, other.center)
        if tol is None:
            tol = rel_eps(d) * 1e3
        return abs(d - (self.r + other.r)) <= tol

    def touches_internally(self, inner: "Disk", tol: float | None = None) -> bool:
        """Whether *inner* touches this disk from the inside.

        The paper's definition: ``int(inner)`` is contained in ``int(self)``
        and the boundaries intersect, i.e. ``d(centers) = self.r - inner.r``.
        """
        d = dist(self.center, inner.center)
        if tol is None:
            tol = rel_eps(max(d, self.r)) * 1e3
        return abs(d - (self.r - inner.r)) <= tol and self.r >= inner.r - tol

    def properly_contains_disk(self, other: "Disk", tol: float = EPS) -> bool:
        """Whether *other* lies in the open interior of this disk."""
        return dist(self.center, other.center) + other.r < self.r - tol

    # ------------------------------------------------------------------
    # Boundary sampling, useful for tests and the SVG gallery.
    # ------------------------------------------------------------------
    def boundary_point(self, theta: float) -> Point:
        """Boundary point at angle *theta*."""
        return (self.cx + self.r * math.cos(theta),
                self.cy + self.r * math.sin(theta))

    def boundary_points(self, count: int) -> List[Point]:
        """*count* evenly spaced boundary points, CCW starting at angle 0."""
        step = 2.0 * math.pi / count
        return [self.boundary_point(i * step) for i in range(count)]


def pairwise_disjoint(disks: Iterable[Disk], tol: float = EPS) -> bool:
    """Whether the closed disks in *disks* are pairwise interior-disjoint.

    Quadratic check; the Theorem 2.10 machinery uses it to validate inputs
    (the ``O(lambda n^2)`` bound requires pairwise-disjoint regions).
    """
    ds = list(disks)
    for i in range(len(ds)):
        for j in range(i + 1, len(ds)):
            if not ds[i].interior_disjoint(ds[j], tol):
                return False
    return True


def radius_ratio(disks: Iterable[Disk]) -> float:
    """The paper's ``lambda``: ratio of the largest to the smallest radius."""
    radii = [d.r for d in disks]
    if not radii:
        raise ValueError("radius ratio of empty disk set")
    smallest = min(radii)
    if smallest <= 0:
        raise ValueError("radius ratio undefined for zero-radius disks")
    return max(radii) / smallest


def delta_value(disks: List[Disk], q: Point) -> float:
    """``Delta(q) = min_i Delta_i(q)``, the lower envelope of max distances.

    Brute-force evaluation used as ground truth in tests; the query data
    structures in :mod:`repro.spatial` compute the same value with pruning.
    """
    if not disks:
        raise ValueError("Delta of empty disk set")
    return min(d.max_dist(q) for d in disks)


def nonzero_nn_indices(mins: List[float], maxs: List[float]) -> List[int]:
    """Lemma 2.1: indices with ``delta_i < Delta_j`` for all ``j != i``.

    Shared semantic core for every NN!=0 implementation.  The paper's
    Eq. (4) simplifies the condition to ``delta_i < min_j Delta_j``, which
    is equivalent whenever ``delta_i < Delta_i`` holds strictly (true for
    any region of positive extent) but breaks for *certain* points, where
    ``delta_i = Delta_i``: the unique nearest certain point must still
    qualify.  We therefore exclude ``j = i`` properly: the threshold for
    the unique minimizer of ``Delta`` is the second-smallest ``Delta``.
    """
    n = len(mins)
    if n == 1:
        return [0]
    best = math.inf
    second = math.inf
    best_idx = -1
    best_count = 0
    for i, v in enumerate(maxs):
        if v < best:
            second = best
            best = v
            best_idx = i
            best_count = 1
        elif v == best:
            best_count += 1
            second = v
        elif v < second:
            second = v
    out = []
    for i in range(n):
        threshold = second if (i == best_idx and best_count == 1) else best
        if mins[i] < threshold:
            out.append(i)
    return out


def nonzero_nn_bruteforce(disks: List[Disk], q: Point,
                          tol: float = EPS) -> List[int]:
    """``NN!=0(q)`` by direct evaluation of the Lemma 2.1 predicate.

    This is the semantic reference implementation every data structure is
    tested against.
    """
    return nonzero_nn_indices([d.min_dist(q) for d in disks],
                              [d.max_dist(q) for d in disks])
