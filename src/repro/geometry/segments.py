"""Segment and line intersection predicates — scalar and batched.

Substrate for the segment-arrangement module (used by the probabilistic
Voronoi diagram ``V_Pr`` of Theorem 4.2, whose edges are pieces of bisector
lines clipped to a bounding box).

The batched kernels (:func:`segment_intersections_batch`,
:func:`line_box_clip_batch`) evaluate the *same* IEEE-754 expression
sequences as their scalar counterparts — element-wise over NumPy arrays,
or row-scalar in the compiled native provider, both served through
:mod:`repro.spatial.kernels` — with identical tolerance comparisons.
That makes their outputs **bitwise identical** to a scalar loop — the
property the vectorized arrangement build relies on to reproduce the
scalar arrangement's combinatorics exactly (same convention as the batch
query engines; see ``repro.geometry.primitives.dist``).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .primitives import EPS, Point, cross, sub

__all__ = [
    "segment_intersection",
    "segment_intersections_batch",
    "line_box_clip",
    "line_box_clip_batch",
    "bisector_line",
    "point_on_segment",
]


def point_on_segment(p: Point, a: Point, b: Point, tol: float = 1e-9) -> bool:
    """Whether *p* lies on segment ``ab`` (within tolerance)."""
    ab = sub(b, a)
    ap = sub(p, a)
    span = max(1.0, abs(ab[0]) + abs(ab[1]))
    if abs(cross(ab, ap)) > tol * span * span:
        return False
    t = (ap[0] * ab[0] + ap[1] * ab[1])
    return -tol * span * span <= t <= ab[0] * ab[0] + ab[1] * ab[1] + tol * span * span


def segment_intersection(a: Point, b: Point, c: Point, d: Point,
                         tol: float = EPS) -> Optional[Point]:
    """The single proper or touching intersection of segments ``ab``, ``cd``.

    Returns ``None`` when the segments miss each other or are parallel
    (collinear overlap is treated as degenerate and reported as ``None``;
    the arrangement code never feeds overlapping collinear segments —
    duplicate bisectors are deduplicated upstream).
    """
    r = sub(b, a)
    s = sub(d, c)
    denom = cross(r, s)
    span = max(1.0, abs(r[0]) + abs(r[1]), abs(s[0]) + abs(s[1]))
    if abs(denom) <= tol * span * span:
        return None
    qp = sub(c, a)
    t = cross(qp, s) / denom
    u = cross(qp, r) / denom
    slack = 1e-12
    if -slack <= t <= 1.0 + slack and -slack <= u <= 1.0 + slack:
        return (a[0] + t * r[0], a[1] + t * r[1])
    return None


def segment_intersections_batch(ax, ay, bx, by, I, J, tol: float = EPS,
                                kernel: str = "auto"):
    """Batched :func:`segment_intersection` for segment pairs ``(I[p], J[p])``.

    ``ax/ay/bx/by`` are the ``(S,)`` endpoint coordinate arrays of a segment
    set; ``I``/``J`` index the pairs to intersect.  Returns ``(px, py, hit)``
    where ``hit[p]`` is true exactly when the scalar call would return a
    point, and ``(px[p], py[p])`` is that point bit-for-bit (the provider
    expressions and tolerance comparisons mirror the scalar code line by
    line; entries with ``hit == False`` are unspecified).  *kernel*
    selects the compute provider (:mod:`repro.spatial.kernels`); both
    providers are bitwise-identical.
    """
    # Imported lazily: repro.spatial pulls in the arrangement module,
    # which imports this one back.
    from ..spatial.kernels import get_provider

    return get_provider(kernel).segment_intersections(
        ax, ay, bx, by, I, J, tol)


def bisector_line(p: Point, q: Point) -> Tuple[float, float, float]:
    """Coefficients ``(a, b, c)`` of the perpendicular bisector ``ax+by=c``.

    The bisector of distinct points ``p`` and ``q``; these are exactly the
    lines whose arrangement refines the probabilistic Voronoi diagram
    ``V_Pr`` in Lemma 4.1 (each pair of possible site locations contributes
    one bisector).
    """
    if p == q:
        raise ValueError("bisector of identical points is undefined")
    a = 2.0 * (q[0] - p[0])
    b = 2.0 * (q[1] - p[1])
    # x*x rather than x**2: one correctly-rounded multiply, which the
    # batched bisector construction reproduces bitwise (C pow(x, 2.0) is
    # not guaranteed to equal x*x on every libm).
    c = (q[0] * q[0] + q[1] * q[1]) - (p[0] * p[0] + p[1] * p[1])
    return (a, b, c)


def line_box_clip(a: float, b: float, c: float,
                  box: Tuple[Point, Point]) -> Optional[Tuple[Point, Point]]:
    """Clip the line ``a*x + b*y = c`` to an axis-aligned box.

    Returns the clipped segment endpoints or ``None`` if the line misses
    the box.  Uses a parametric (Liang–Barsky style) clip of a long segment
    aligned with the line direction.
    """
    (xmin, ymin), (xmax, ymax) = box
    # sqrt(a*a + b*b) rather than math.hypot: the batched clip kernel
    # evaluates the same correctly-rounded form, which keeps the two paths
    # bitwise identical (hypot rounds differently on ~1% of inputs).
    norm = math.sqrt(a * a + b * b)
    if norm <= EPS:
        raise ValueError("degenerate line coefficients")
    # Point on the line closest to the box center, and the line direction.
    cx = 0.5 * (xmin + xmax)
    cy = 0.5 * (ymin + ymax)
    offset = (a * cx + b * cy - c) / (norm * norm)
    px = cx - offset * a
    py = cy - offset * b
    dx = -b / norm
    dy = a / norm
    # Parametric clipping of p + t*d against the four box walls.
    t0 = -math.inf
    t1 = math.inf
    for coord, d, lo, hi in ((px, dx, xmin, xmax), (py, dy, ymin, ymax)):
        if abs(d) <= EPS:
            if coord < lo - EPS or coord > hi + EPS:
                return None
            continue
        ta = (lo - coord) / d
        tb = (hi - coord) / d
        if ta > tb:
            ta, tb = tb, ta
        t0 = max(t0, ta)
        t1 = min(t1, tb)
    if t0 >= t1:
        return None
    return ((px + t0 * dx, py + t0 * dy), (px + t1 * dx, py + t1 * dy))


def line_box_clip_batch(A, B, C, box: Tuple[Point, Point],
                        kernel: str = "auto"):
    """Batched :func:`line_box_clip` over coefficient arrays ``A, B, C``.

    Returns ``(segs, valid)`` where ``segs`` is a ``(k, 4)`` array of
    ``(x1, y1, x2, y2)`` rows and ``valid[i]`` is true exactly when the
    scalar clip would return a segment; valid rows are bit-for-bit the
    scalar endpoints (same expression sequence, same wall order, same
    comparison tolerances).  Raises on degenerate coefficient rows, as the
    scalar kernel does.  *kernel* selects the compute provider
    (:mod:`repro.spatial.kernels`); both providers are bitwise-identical.
    """
    from ..spatial.kernels import get_provider

    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    C = np.asarray(C, dtype=np.float64)
    shape = A.shape
    segs, valid = get_provider(kernel).line_box_clip(
        A.ravel(), B.ravel(), C.ravel(), box, EPS)
    return segs.reshape(shape + (4,)), valid.reshape(shape)
