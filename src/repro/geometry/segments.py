"""Segment and line intersection predicates.

Substrate for the segment-arrangement module (used by the probabilistic
Voronoi diagram ``V_Pr`` of Theorem 4.2, whose edges are pieces of bisector
lines clipped to a bounding box).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from .primitives import EPS, Point, cross, sub

__all__ = [
    "segment_intersection",
    "line_box_clip",
    "bisector_line",
    "point_on_segment",
]


def point_on_segment(p: Point, a: Point, b: Point, tol: float = 1e-9) -> bool:
    """Whether *p* lies on segment ``ab`` (within tolerance)."""
    ab = sub(b, a)
    ap = sub(p, a)
    span = max(1.0, abs(ab[0]) + abs(ab[1]))
    if abs(cross(ab, ap)) > tol * span * span:
        return False
    t = (ap[0] * ab[0] + ap[1] * ab[1])
    return -tol * span * span <= t <= ab[0] * ab[0] + ab[1] * ab[1] + tol * span * span


def segment_intersection(a: Point, b: Point, c: Point, d: Point,
                         tol: float = EPS) -> Optional[Point]:
    """The single proper or touching intersection of segments ``ab``, ``cd``.

    Returns ``None`` when the segments miss each other or are parallel
    (collinear overlap is treated as degenerate and reported as ``None``;
    the arrangement code never feeds overlapping collinear segments —
    duplicate bisectors are deduplicated upstream).
    """
    r = sub(b, a)
    s = sub(d, c)
    denom = cross(r, s)
    span = max(1.0, abs(r[0]) + abs(r[1]), abs(s[0]) + abs(s[1]))
    if abs(denom) <= tol * span * span:
        return None
    qp = sub(c, a)
    t = cross(qp, s) / denom
    u = cross(qp, r) / denom
    slack = 1e-12
    if -slack <= t <= 1.0 + slack and -slack <= u <= 1.0 + slack:
        return (a[0] + t * r[0], a[1] + t * r[1])
    return None


def bisector_line(p: Point, q: Point) -> Tuple[float, float, float]:
    """Coefficients ``(a, b, c)`` of the perpendicular bisector ``ax+by=c``.

    The bisector of distinct points ``p`` and ``q``; these are exactly the
    lines whose arrangement refines the probabilistic Voronoi diagram
    ``V_Pr`` in Lemma 4.1 (each pair of possible site locations contributes
    one bisector).
    """
    if p == q:
        raise ValueError("bisector of identical points is undefined")
    a = 2.0 * (q[0] - p[0])
    b = 2.0 * (q[1] - p[1])
    c = (q[0] ** 2 + q[1] ** 2) - (p[0] ** 2 + p[1] ** 2)
    return (a, b, c)


def line_box_clip(a: float, b: float, c: float,
                  box: Tuple[Point, Point]) -> Optional[Tuple[Point, Point]]:
    """Clip the line ``a*x + b*y = c`` to an axis-aligned box.

    Returns the clipped segment endpoints or ``None`` if the line misses
    the box.  Uses a parametric (Liang–Barsky style) clip of a long segment
    aligned with the line direction.
    """
    (xmin, ymin), (xmax, ymax) = box
    norm = math.hypot(a, b)
    if norm <= EPS:
        raise ValueError("degenerate line coefficients")
    # Point on the line closest to the box center, and the line direction.
    cx = 0.5 * (xmin + xmax)
    cy = 0.5 * (ymin + ymax)
    offset = (a * cx + b * cy - c) / (norm * norm)
    px = cx - offset * a
    py = cy - offset * b
    dx = -b / norm
    dy = a / norm
    # Parametric clipping of p + t*d against the four box walls.
    t0 = -math.inf
    t1 = math.inf
    for coord, d, lo, hi in ((px, dx, xmin, xmax), (py, dy, ymin, ymax)):
        if abs(d) <= EPS:
            if coord < lo - EPS or coord > hi + EPS:
                return None
            continue
        ta = (lo - coord) / d
        tb = (hi - coord) / d
        if ta > tb:
            ta, tb = tb, ta
        t0 = max(t0, ta)
        t1 = min(t1, tb)
    if t0 >= t1:
        return None
    return ((px + t0 * dx, py + t0 * dy), (px + t1 * dx, py + t1 * dy))
