"""Circumcircles and smallest enclosing disks.

Two roles in the reproduction:

* ``circumcenter`` — every vertex of the *discrete-case* nonzero Voronoi
  diagram (Theorem 2.14) is equidistant from three sites, i.e. is the
  circumcenter of a site triple.  The discrete diagram enumerates candidate
  triples and validates them, so this predicate is on the hot path.
* ``smallest_enclosing_disk`` (Welzl's randomized algorithm) — the support
  region of a discrete or histogram distribution, used as the uncertainty
  region for the continuous-case structures and for workload generation.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .disks import Disk
from .primitives import EPS, Point, dist

__all__ = [
    "circumcenter",
    "circle_through",
    "smallest_enclosing_disk",
]


def circumcenter(a: Point, b: Point, c: Point) -> Optional[Point]:
    """Center of the circle through three points, ``None`` if collinear.

    Solved from the two perpendicular-bisector equations; the determinant
    ``d`` is twice the signed triangle area, so near-collinear triples
    (degenerate circumcircles far away) return ``None`` under a relative
    tolerance.
    """
    ax, ay = a
    bx, by = b
    cx, cy = c
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    span = max(abs(ax - bx) + abs(ay - by), abs(ax - cx) + abs(ay - cy), 1.0)
    if abs(d) <= EPS * span * span:
        return None
    a2 = ax * ax + ay * ay
    b2 = bx * bx + by * by
    c2 = cx * cx + cy * cy
    ux = (a2 * (by - cy) + b2 * (cy - ay) + c2 * (ay - by)) / d
    uy = (a2 * (cx - bx) + b2 * (ax - cx) + c2 * (bx - ax)) / d
    return (ux, uy)


def circle_through(points: Sequence[Point]) -> Optional[Disk]:
    """The circle through 0, 1, 2 or 3 boundary points (Welzl's base case).

    * 0 points: the degenerate empty disk at the origin with radius 0.
    * 1 point: radius-0 disk at the point.
    * 2 points: diametral disk.
    * 3 points: circumscribed disk (``None`` if collinear).
    """
    if len(points) == 0:
        return Disk(0.0, 0.0, 0.0)
    if len(points) == 1:
        return Disk(points[0][0], points[0][1], 0.0)
    if len(points) == 2:
        (x1, y1), (x2, y2) = points
        cx, cy = (x1 + x2) / 2.0, (y1 + y2) / 2.0
        return Disk(cx, cy, dist((cx, cy), points[0]))
    if len(points) == 3:
        center = circumcenter(points[0], points[1], points[2])
        if center is None:
            return None
        return Disk(center[0], center[1], dist(center, points[0]))
    raise ValueError("circle_through supports at most 3 points")


def smallest_enclosing_disk(points: Sequence[Point],
                            seed: int = 0) -> Disk:
    """Smallest disk containing all *points* (Welzl, move-to-front variant).

    Expected linear time after the initial shuffle; the shuffle is seeded so
    results are reproducible.  A relative containment tolerance keeps the
    recursion stable for duplicated or nearly-cocircular inputs.
    """
    if not points:
        raise ValueError("smallest enclosing disk of empty set")
    pts: List[Point] = list(points)
    rng = random.Random(seed)
    rng.shuffle(pts)

    tol = EPS * max(1.0, max(abs(x) + abs(y) for x, y in pts))

    def contains(disk: Optional[Disk], p: Point) -> bool:
        return disk is not None and dist(disk.center, p) <= disk.r + tol

    disk = circle_through(pts[:1])
    for i in range(1, len(pts)):
        if contains(disk, pts[i]):
            continue
        disk = circle_through([pts[i]])
        for j in range(i):
            if contains(disk, pts[j]):
                continue
            disk = circle_through([pts[i], pts[j]])
            for k in range(j):
                if contains(disk, pts[k]):
                    continue
                candidate = circle_through([pts[i], pts[j], pts[k]])
                if candidate is None:
                    # Collinear support: fall back to the diametral disk of
                    # the two extreme points among the three.
                    trio = [pts[i], pts[j], pts[k]]
                    far: Tuple[Point, Point] = max(
                        ((p, q) for p in trio for q in trio),
                        key=lambda pq: dist(pq[0], pq[1]))
                    candidate = circle_through([far[0], far[1]])
                disk = candidate
    assert disk is not None
    return disk
