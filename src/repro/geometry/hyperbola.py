"""Hyperbola branches in polar form around a focus.

The paper's Section 2.1 rests on two families of curves, both branches of
hyperbolae with foci at two disk centers:

* ``gamma_ij = {x : delta_i(x) = Delta_j(x)}`` — the points whose smallest
  distance to disk ``D_i`` equals their largest distance to disk ``D_j``,
  i.e. ``d(x, c_i) - d(x, c_j) = r_i + r_j``.  Lemma 2.2 observes that a ray
  from ``c_i`` meets this curve at most once, so it is the graph of a
  function in polar coordinates around ``c_i``.
* The same point set viewed in polar coordinates around the *other* focus
  ``c_j`` — used by the witness-disk solver (Theorem 2.5's vertex
  characterization), where two such curves share the inner disk's center as
  a common focus.

Both have the rational polar form::

    rho(theta) = num / (A*cos(theta) + B*sin(theta) + C),   denom > 0

which makes every pairwise intersection of two same-focus branches a
solution of a single linear equation in ``(cos theta, sin theta)`` — solved
exactly by one ``atan2`` and one ``acos``.  This closed form is what keeps
the envelope and vertex computations robust: no iterative root finding is
needed anywhere in the continuous-case pipeline.

A zero transverse axis (``r_i + r_j = 0``, i.e. two certain points) yields
``C = 0`` and the "hyperbola" degenerates gracefully to the perpendicular
bisector line, still in the same representation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from .disks import Disk
from .primitives import EPS, TWO_PI, Point, angle_of, dist, normalize_angle

__all__ = [
    "PolarHyperbola",
    "gamma_branch",
    "witness_branch",
    "intersect_same_focus",
]


class PolarHyperbola:
    """A curve ``rho(theta) = num / (A cos(theta) + B sin(theta) + C)``.

    Defined (and positive) on the open angular domain where the denominator
    is positive.  ``num`` is always positive by construction.

    Attributes
    ----------
    focus:
        The pole of the polar coordinate system.
    num, A, B, C:
        Coefficients of the rational polar form.
    label:
        Opaque tag identifying the curve (the envelope code stores the index
        of the "other" disk here so breakpoints can name their witnesses).
    """

    __slots__ = ("focus", "num", "A", "B", "C", "label")

    def __init__(self, focus: Point, num: float, A: float, B: float,
                 C: float, label: object = None) -> None:
        if num <= 0:
            raise ValueError(f"polar hyperbola numerator must be > 0, got {num}")
        self.focus = focus
        self.num = num
        self.A = A
        self.B = B
        self.C = C
        self.label = label

    # ------------------------------------------------------------------
    def denom(self, theta: float) -> float:
        """Denominator ``A cos(theta) + B sin(theta) + C``."""
        return self.A * math.cos(theta) + self.B * math.sin(theta) + self.C

    def radius(self, theta: float) -> float:
        """Radial distance at angle *theta*, ``inf`` outside the domain."""
        d = self.denom(theta)
        if d <= EPS * max(1.0, abs(self.A), abs(self.B), abs(self.C)):
            return math.inf
        return self.num / d

    def point_at(self, theta: float) -> Point:
        """The curve point at angle *theta* (must be inside the domain)."""
        rho = self.radius(theta)
        if not math.isfinite(rho):
            raise ValueError(f"theta={theta} outside domain of {self!r}")
        return (self.focus[0] + rho * math.cos(theta),
                self.focus[1] + rho * math.sin(theta))

    def domain(self) -> Optional[Tuple[float, float]]:
        """The angular domain as ``(center, half_width)``, or ``None`` if empty.

        The domain is the arc ``(center - half_width, center + half_width)``
        (angles mod 2*pi).  ``half_width == pi`` means the full circle.
        """
        r = math.hypot(self.A, self.B)
        if r <= EPS:
            # Constant denominator.
            return (0.0, math.pi) if self.C > EPS else None
        alpha = math.atan2(self.B, self.A)
        ratio = -self.C / r
        if ratio >= 1.0 - 1e-15:
            return None  # denominator never positive
        if ratio <= -1.0 + 1e-15:
            return (normalize_angle(alpha), math.pi)  # full circle
        return (normalize_angle(alpha), math.acos(ratio))

    def domain_intervals(self) -> List[Tuple[float, float]]:
        """The domain as a list of ``[lo, hi]`` intervals inside ``[0, 2*pi]``.

        Wrapping arcs are split at 0, so downstream code can work with plain
        ordered intervals.
        """
        dom = self.domain()
        if dom is None:
            return []
        center, half = dom
        if half >= math.pi - 1e-15:
            return [(0.0, TWO_PI)]
        lo = center - half
        hi = center + half
        lo_n = normalize_angle(lo)
        hi_n = normalize_angle(hi)
        if lo_n <= hi_n:
            return [(lo_n, hi_n)]
        return [(0.0, hi_n), (lo_n, TWO_PI)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PolarHyperbola(focus={self.focus}, num={self.num:.6g}, "
                f"A={self.A:.6g}, B={self.B:.6g}, C={self.C:.6g}, "
                f"label={self.label!r})")


def gamma_branch(inner: Disk, outer: Disk,
                 label: object = None) -> Optional[PolarHyperbola]:
    """The curve ``{x : delta_inner(x) = Delta_outer(x)}``, polar around
    ``inner.center``.

    This is the paper's ``gamma_ij`` (with ``i = inner``, ``j = outer``): the
    locus where the minimum distance to ``D_i`` equals the maximum distance
    to ``D_j``, i.e. ``d(x, c_i) - d(x, c_j) = r_i + r_j``.  It is the branch
    of a hyperbola closer to ``c_j`` and exists iff the disks are strictly
    interior-disjoint (``|c_i c_j| > r_i + r_j``); otherwise ``None`` is
    returned because ``delta_i < Delta_j`` everywhere.

    Derivation (in polar coordinates ``x = c_i + rho * u(theta)``, with
    ``D = |c_i c_j|``, ``2a = r_i + r_j`` and ``psi = theta - angle(c_j - c_i)``)::

        sqrt(rho^2 + D^2 - 2 rho D cos psi) = rho - 2a
        =>  rho = (D^2 - 4a^2) / (2 D cos psi - 4a)
    """
    ci = inner.center
    cj = outer.center
    d_centers = dist(ci, cj)
    two_a = inner.r + outer.r
    if d_centers <= two_a + EPS * max(1.0, d_centers):
        return None  # overlapping (or tangent) disks: delta_i < Delta_j always
    phi = angle_of((cj[0] - ci[0], cj[1] - ci[1]))
    num = d_centers * d_centers - two_a * two_a
    a_coef = 2.0 * d_centers * math.cos(phi)
    b_coef = 2.0 * d_centers * math.sin(phi)
    c_coef = -2.0 * two_a
    return PolarHyperbola(ci, num, a_coef, b_coef, c_coef, label=label)


def witness_branch(moving: Disk, pivot: Disk,
                   label: object = None) -> Optional[PolarHyperbola]:
    """The same point set ``{x : delta_moving(x) = Delta_pivot(x)}`` but in
    polar coordinates around ``pivot.center``.

    Used by the witness-disk solver: a vertex of ``V!=0`` where curves
    ``gamma_i`` and ``gamma_j`` cross with witness disk ``D_u`` satisfies
    ``delta_i(x) = Delta_u(x)`` and ``delta_j(x) = Delta_u(x)``.  Expressing
    both curves around the *common* focus ``c_u`` lets
    :func:`intersect_same_focus` find the crossing in closed form.

    Derivation (``s = d(x, c_u)``, ``D = |c_i c_u|``, ``2a = r_i + r_u``,
    ``psi = theta - angle(c_i - c_u)``)::

        d(x, c_i) = s + 2a
        =>  s = (D^2 - 4a^2) / (2 D cos psi + 4a)
    """
    ci = moving.center
    cu = pivot.center
    d_centers = dist(ci, cu)
    two_a = moving.r + pivot.r
    if d_centers <= two_a + EPS * max(1.0, d_centers):
        return None
    phi = angle_of((ci[0] - cu[0], ci[1] - cu[1]))
    num = d_centers * d_centers - two_a * two_a
    a_coef = 2.0 * d_centers * math.cos(phi)
    b_coef = 2.0 * d_centers * math.sin(phi)
    c_coef = 2.0 * two_a
    return PolarHyperbola(cu, num, a_coef, b_coef, c_coef, label=label)


def intersect_same_focus(h1: PolarHyperbola, h2: PolarHyperbola,
                         tol: float = EPS) -> List[float]:
    """Angles where two same-focus branches have equal (finite) radius.

    ``num1 / denom1(theta) = num2 / denom2(theta)`` rearranges to::

        Ab*cos(theta) + Bb*sin(theta) + Cb = 0

    with ``Ab = num1*A2 - num2*A1`` etc., which has at most two solutions —
    matching the paper's "each pair of curves intersects at most twice"
    (proof of Lemma 2.2).  Solutions where either curve is outside its
    domain (non-positive denominator) are discarded.

    Returns angles normalized to ``[0, 2*pi)``, deduplicated; tangential
    contacts yield a single angle.
    """
    if h1.focus != h2.focus:
        raise ValueError("intersect_same_focus requires a common focus")
    ab = h1.num * h2.A - h2.num * h1.A
    bb = h1.num * h2.B - h2.num * h1.B
    cb = h1.num * h2.C - h2.num * h1.C
    r = math.hypot(ab, bb)
    scale = max(1.0, abs(h1.num), abs(h2.num),
                abs(h1.A) + abs(h1.B), abs(h2.A) + abs(h2.B))
    if r <= tol * scale:
        # Either identical curves (infinitely many intersections; callers
        # treat overlapping inputs as degenerate) or no solution.
        return []
    ratio = -cb / r
    if ratio > 1.0:
        if ratio > 1.0 + tol:
            return []
        ratio = 1.0
    elif ratio < -1.0:
        if ratio < -1.0 - tol:
            return []
        ratio = -1.0
    alpha = math.atan2(bb, ab)
    offset = math.acos(ratio)
    candidates = [alpha + offset, alpha - offset]
    out: List[float] = []
    for theta in candidates:
        theta = normalize_angle(theta)
        d1 = h1.denom(theta)
        d2 = h2.denom(theta)
        if d1 <= tol * scale or d2 <= tol * scale:
            continue
        if not any(abs(theta - t) <= 1e-12 or
                   abs(abs(theta - t) - TWO_PI) <= 1e-12 for t in out):
            out.append(theta)
    return out
