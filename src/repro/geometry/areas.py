"""Exact intersection areas: circle–circle and circle–rectangle.

These areas are the analytic backbone of the distance distributions:

* For a *uniform-on-disk* uncertain point ``P_i`` (Figure 1 of the paper),
  the distance cdf is ``G_{q,i}(r) = area(D_i ∩ B(q, r)) / area(D_i)`` —
  a circle–circle lens area.
* For a *histogram* pdf (piecewise constant on grid cells), ``G`` needs the
  area of each rectangular cell inside ``B(q, r)`` — a circle–rectangle
  intersection.

Both are closed-form; the rectangle case is assembled from the quadrant
primitive ``area(disk ∩ {u <= x, v <= y})`` by inclusion–exclusion.
"""

from __future__ import annotations

import math
from typing import Tuple

from .primitives import Point

__all__ = ["lens_area", "circle_rect_area", "disk_area"]


def disk_area(r: float) -> float:
    """Area of a disk of radius *r*."""
    return math.pi * r * r


def lens_area(c1: Point, r1: float, c2: Point, r2: float) -> float:
    """Area of the intersection of two closed disks.

    Standard two-circular-segment formula with the usual containment and
    disjointness short-circuits.  Numerically safe: the ``acos`` arguments
    are clamped to ``[-1, 1]``.
    """
    if r1 < 0 or r2 < 0:
        raise ValueError("negative radius")
    d = math.hypot(c1[0] - c2[0], c1[1] - c2[1])
    if d >= r1 + r2:
        return 0.0
    # Near-concentric guard: center distances far below the radius scale
    # (including subnormals) are treated as exactly concentric, keeping the
    # acos denominators away from underflow.
    if d <= abs(r1 - r2) or d <= (r1 + r2) * 1e-12:
        rmin = min(r1, r2)
        return math.pi * rmin * rmin
    # Circular-segment decomposition.
    alpha = _clamped_acos((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1))
    beta = _clamped_acos((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2))
    return (r1 * r1 * (alpha - math.sin(alpha) * math.cos(alpha))
            + r2 * r2 * (beta - math.sin(beta) * math.cos(beta)))


def _clamped_acos(x: float) -> float:
    return math.acos(min(1.0, max(-1.0, x)))


def circle_rect_area(center: Point, r: float,
                     rect: Tuple[Point, Point]) -> float:
    """Area of ``disk(center, r)`` intersected with an axis-aligned rectangle.

    *rect* is ``((xmin, ymin), (xmax, ymax))``.  Assembled by
    inclusion–exclusion over the quadrant primitive
    :func:`_quadrant_area`, after translating the circle to the origin.
    """
    if r < 0:
        raise ValueError("negative radius")
    if r == 0:
        return 0.0
    (xmin, ymin), (xmax, ymax) = rect
    if xmin > xmax or ymin > ymax:
        raise ValueError("malformed rectangle")
    x0 = xmin - center[0]
    x1 = xmax - center[0]
    y0 = ymin - center[1]
    y1 = ymax - center[1]
    return (_quadrant_area(x1, y1, r) - _quadrant_area(x0, y1, r)
            - _quadrant_area(x1, y0, r) + _quadrant_area(x0, y0, r))


def _quadrant_area(x: float, y: float, r: float) -> float:
    """Area of ``{u^2 + v^2 <= r^2, u <= x, v <= y}``.

    Computed as ``integral over v in [-r, min(y, r)]`` of the chord width
    ``len{u : u <= x, |u| <= w(v)}`` with ``w(v) = sqrt(r^2 - v^2)``:

    * ``x >= w(v)``: full chord, width ``2 w(v)``;
    * ``-w(v) < x < w(v)``: partial chord, width ``x + w(v)``;
    * ``x <= -w(v)``: empty.

    The split points in ``v`` are ``±sqrt(r^2 - x^2)``; each piece has a
    closed-form antiderivative (``_int_w`` below is the integral of ``w``).
    """
    yc = min(y, r)
    if yc <= -r:
        return 0.0
    if x <= -r:
        return 0.0
    if x >= r:
        # Full chords throughout.
        return _int_2w(-r, yc, r)
    # |x| < r: chord type changes at v = ±vstar.
    vstar = math.sqrt(max(r * r - x * x, 0.0))
    total = 0.0
    if x >= 0:
        # Full chord for |v| >= vstar, partial for |v| < vstar.
        lo = -r
        hi = min(yc, -vstar)
        if hi > lo:
            total += _int_2w(lo, hi, r)
        lo = -vstar
        hi = min(yc, vstar)
        if hi > lo:
            total += x * (hi - lo) + _int_w(lo, hi, r)
        lo = vstar
        hi = yc
        if hi > lo:
            total += _int_2w(lo, hi, r)
    else:
        # x < 0: empty for |v| >= vstar, partial for |v| < vstar.
        lo = -vstar
        hi = min(yc, vstar)
        if hi > lo:
            total += x * (hi - lo) + _int_w(lo, hi, r)
    return total


def _int_w(lo: float, hi: float, r: float) -> float:
    """Integral of ``sqrt(r^2 - v^2)`` over ``[lo, hi]``."""
    return _anti_w(hi, r) - _anti_w(lo, r)


def _int_2w(lo: float, hi: float, r: float) -> float:
    """Integral of ``2*sqrt(r^2 - v^2)`` over ``[lo, hi]``."""
    return 2.0 * _int_w(lo, hi, r)


def _anti_w(v: float, r: float) -> float:
    v = min(r, max(-r, v))
    return 0.5 * (v * math.sqrt(max(r * r - v * v, 0.0))
                  + r * r * math.asin(v / r))
