"""Convex hulls and farthest-point queries.

The discrete-distribution machinery needs, for a site set ``P_i``, fast
evaluation of ``Delta_i(q) = max_p d(q, p)``.  The maximum is always
attained at a vertex of the convex hull of ``P_i``, so precomputing the
hull (Andrew's monotone chain) reduces the per-query work from ``k`` to
``h <= k`` distance evaluations — and the hull itself is reused by the
halfplane-redundancy analysis of the dominance polygons ``K_ij``.
"""

from __future__ import annotations

from typing import List, Sequence

from .primitives import Point, dist, orient

__all__ = ["convex_hull", "farthest_point_index", "FarthestPointOracle"]


def convex_hull(points: Sequence[Point]) -> List[Point]:
    """Convex hull in counter-clockwise order (Andrew's monotone chain).

    Collinear points on the hull boundary are dropped; duplicate input
    points are tolerated.  For fewer than three distinct points the hull is
    the distinct points themselves (possibly a segment or a single point).
    """
    pts = sorted(set(points))
    if len(pts) <= 2:
        return pts

    def half(seq: Sequence[Point]) -> List[Point]:
        chain: List[Point] = []
        for p in seq:
            # Pop on right turns and exact collinearity.  No epsilon here:
            # a tolerance band makes the chain drop genuinely extreme
            # vertices whose cross products are tiny (e.g. subnormal
            # coordinates); exact zero keeps the hull a superset of the
            # true hull, which is the safe direction for the farthest-point
            # and dominance uses downstream.
            while len(chain) >= 2 and orient(chain[-2], chain[-1], p) <= 0.0:
                chain.pop()
            chain.append(p)
        return chain

    lower = half(pts)
    upper = half(pts[::-1])
    return _drop_cyclic_collinear(lower[:-1] + upper[:-1])


def _drop_cyclic_collinear(hull: List[Point]) -> List[Point]:
    """Remove vertices that are collinear when the closed hull is traversed.

    The chains above pop on ``orient <= 0``, but floating-point ``orient``
    is not invariant under cyclic rotation: a triple that evaluates
    strictly positive inside a chain can evaluate to exactly zero once the
    hull wraps around (e.g. ``(0,0), (1,1), (4.5e-262, 0)`` — the subnormal
    coordinate is absorbed when subtracted from 1).  Re-test every cyclic
    triple and drop the middle vertex of any non-left turn until the
    polygon is strictly convex; each drop moves the hull inward by at most
    one rounding ulp, so the farthest-point and dominance uses downstream
    are unaffected.
    """
    while len(hull) >= 3:
        m = len(hull)
        drop = next((i for i in range(m)
                     if orient(hull[i - 1], hull[i],
                               hull[(i + 1) % m]) <= 0.0), None)
        if drop is None:
            break
        hull.pop(drop)
    return hull


def farthest_point_index(points: Sequence[Point], q: Point) -> int:
    """Index (into *points*) of the point farthest from *q* (brute force).

    Ties break toward the smallest index, making the result deterministic
    for the degenerate configurations used in tests.
    """
    if not points:
        raise ValueError("farthest point of empty set")
    best = 0
    best_d = dist(points[0], q)
    for i in range(1, len(points)):
        d = dist(points[i], q)
        if d > best_d:
            best, best_d = i, d
    return best


class FarthestPointOracle:
    """Farthest-point distance queries against a fixed point set.

    Precomputes the convex hull once; queries scan only hull vertices.
    This matches how the paper's ``Delta_i`` surfaces are built from the
    farthest-point Voronoi diagram of ``P_i`` (Section 2.2) — the farthest
    site is always a hull vertex.
    """

    def __init__(self, points: Sequence[Point]) -> None:
        if not points:
            raise ValueError("oracle needs at least one point")
        self.points = list(points)
        self.hull = convex_hull(points) or [self.points[0]]

    def max_dist(self, q: Point) -> float:
        """``Delta(q) = max_p d(q, p)`` over the stored points."""
        return max(dist(v, q) for v in self.hull)

    def farthest(self, q: Point) -> Point:
        """The hull vertex attaining ``max_dist(q)``."""
        return max(self.hull, key=lambda v: dist(v, q))
