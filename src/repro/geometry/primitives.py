"""Planar geometric primitives and the shared tolerance model.

Everything in :mod:`repro.geometry` operates on plain ``(x, y)`` tuples of
floats.  We deliberately avoid a heavyweight ``Point`` class: the library
manipulates millions of coordinates in the arrangement and envelope code, and
tuples keep that cheap while staying hashable (useful for vertex
de-duplication).

The tolerance model
-------------------
The paper assumes the real-RAM model with exact constant-degree root finding.
We work in floating point instead, so every combinatorial predicate
(tangency, breakpoint ordering, vertex identity) is evaluated against a
tolerance.  Two knobs are exposed:

``EPS``
    absolute slack used by generic comparisons (1e-9).
``rel_eps(scale)``
    scale-aware slack: ``EPS * max(1, |scale|)``.  Used whenever the inputs
    can be large (e.g. the Theorem 2.7 construction places disks at distance
    ``8 n^2`` from the origin).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

Point = Tuple[float, float]

#: Absolute tolerance used by the geometric predicates in this package.
EPS = 1e-9

#: Full turn, used by the polar-coordinate envelope machinery.
TWO_PI = 2.0 * math.pi


def rel_eps(scale: float) -> float:
    """Return a tolerance appropriate for coordinates of magnitude *scale*."""
    return EPS * max(1.0, abs(scale))


def almost_equal(a: float, b: float, tol: float = EPS) -> bool:
    """Whether *a* and *b* agree up to absolute + relative tolerance *tol*."""
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def dist(p: Point, q: Point) -> float:
    """Euclidean distance between two points.

    Computed as ``sqrt(dx*dx + dy*dy)`` — every step correctly rounded in
    IEEE-754 — rather than ``math.hypot``: NumPy evaluating the same
    formula in the batch kernels (``spatial/batch.py``) then agrees
    *bitwise* with the scalar paths, which is what lets the batch query
    engine return identical answer sets.  (``math.hypot`` and ``np.hypot``
    are each faithful but round differently on ~1% of inputs.)  The
    trade-off is precision loss outside ~1e-150..1e150, far beyond the
    library's operating range.
    """
    dx = p[0] - q[0]
    dy = p[1] - q[1]
    return math.sqrt(dx * dx + dy * dy)


def dist2(p: Point, q: Point) -> float:
    """Squared Euclidean distance (avoids the sqrt in comparisons)."""
    dx = p[0] - q[0]
    dy = p[1] - q[1]
    return dx * dx + dy * dy


def norm(v: Point) -> float:
    """Euclidean norm of a vector."""
    return math.hypot(v[0], v[1])


def sub(p: Point, q: Point) -> Point:
    """Vector difference ``p - q``."""
    return (p[0] - q[0], p[1] - q[1])


def add(p: Point, q: Point) -> Point:
    """Vector sum ``p + q``."""
    return (p[0] + q[0], p[1] + q[1])


def scale(p: Point, s: float) -> Point:
    """Vector ``p`` scaled by ``s``."""
    return (p[0] * s, p[1] * s)


def dot(p: Point, q: Point) -> float:
    """Dot product."""
    return p[0] * q[0] + p[1] * q[1]


def cross(p: Point, q: Point) -> float:
    """Z-component of the 3-D cross product of two plane vectors."""
    return p[0] * q[1] - p[1] * q[0]


def midpoint(p: Point, q: Point) -> Point:
    """Midpoint of the segment ``pq``."""
    return ((p[0] + q[0]) / 2.0, (p[1] + q[1]) / 2.0)


def orient(a: Point, b: Point, c: Point) -> float:
    """Signed twice-area of triangle ``abc``.

    Positive when ``c`` lies to the left of the directed line ``a -> b``.
    This is the fundamental orientation predicate used by the convex hull,
    halfplane clipping and segment-intersection code.
    """
    return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])


def orient_sign(a: Point, b: Point, c: Point, tol: float = EPS) -> int:
    """Orientation of ``c`` relative to line ``a -> b``: -1, 0 or +1.

    The zero band scales with the magnitude of the inputs so that nearly
    collinear triples of large coordinates are classified as collinear
    rather than flipping sign with rounding noise.
    """
    v = orient(a, b, c)
    span = max(
        abs(b[0] - a[0]) + abs(b[1] - a[1]),
        abs(c[0] - a[0]) + abs(c[1] - a[1]),
    )
    if abs(v) <= tol * max(1.0, span * span):
        return 0
    return 1 if v > 0 else -1


def angle_of(v: Point) -> float:
    """Polar angle of vector *v* normalized to ``[0, 2*pi)``."""
    a = math.atan2(v[1], v[0])
    if a < 0.0:
        a += TWO_PI
    return a


def normalize_angle(theta: float) -> float:
    """Normalize an angle to ``[0, 2*pi)``."""
    theta = math.fmod(theta, TWO_PI)
    if theta < 0.0:
        theta += TWO_PI
    if theta >= TWO_PI:  # tiny negatives round up to exactly 2*pi
        theta = 0.0
    return theta


def angle_in_ccw_range(theta: float, start: float, end: float,
                       tol: float = EPS) -> bool:
    """Whether angle *theta* lies on the CCW arc from *start* to *end*.

    All angles are normalized first; a full-circle arc (``start == end``)
    contains everything.
    """
    theta = normalize_angle(theta)
    start = normalize_angle(start)
    end = normalize_angle(end)
    if almost_equal(start, end, tol):
        return True
    if start <= end:
        return start - tol <= theta <= end + tol
    return theta >= start - tol or theta <= end + tol


def polar_point(center: Point, radius: float, theta: float) -> Point:
    """The point at polar coordinates ``(radius, theta)`` around *center*."""
    return (center[0] + radius * math.cos(theta),
            center[1] + radius * math.sin(theta))


def centroid(points: Sequence[Point]) -> Point:
    """Arithmetic mean of a non-empty point sequence."""
    if not points:
        raise ValueError("centroid of empty point set")
    sx = sum(p[0] for p in points)
    sy = sum(p[1] for p in points)
    return (sx / len(points), sy / len(points))


def bounding_box(points: Iterable[Point]) -> Tuple[Point, Point]:
    """Axis-aligned bounding box ``(lo, hi)`` of a non-empty point iterable."""
    it = iter(points)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("bounding box of empty point set") from None
    xmin = xmax = first[0]
    ymin = ymax = first[1]
    for x, y in it:
        xmin = min(xmin, x)
        xmax = max(xmax, x)
        ymin = min(ymin, y)
        ymax = max(ymax, y)
    return (xmin, ymin), (xmax, ymax)


def dedupe_points(points: Iterable[Point], tol: float = 1e-7) -> list:
    """Collapse a point collection up to tolerance *tol*.

    Used by the diagram code to count geometrically distinct vertices: the
    same arrangement vertex is typically discovered several times (once per
    incident curve pair), with coordinates agreeing only up to roundoff.

    A hash grid with cell size *tol* makes this O(n) while merging any two
    points within distance *tol* (points in neighbouring cells are checked
    explicitly).
    """
    grid = {}
    out = []
    inv = 1.0 / tol
    for p in points:
        cx = math.floor(p[0] * inv)
        cy = math.floor(p[1] * inv)
        found = False
        for dx_cell in (-1, 0, 1):
            for dy_cell in (-1, 0, 1):
                for q in grid.get((cx + dx_cell, cy + dy_cell), ()):
                    if dist(p, q) <= tol:
                        found = True
                        break
                if found:
                    break
            if found:
                break
        if not found:
            grid.setdefault((cx, cy), []).append(p)
            out.append(p)
    return out
