"""Axis-aligned squares: uncertainty regions for the L-infinity metric.

Remark (ii) after Theorem 3.1: "If we use L1 or L-infinity metric to
compute the distance between points and use disks in L1 or L-infinity
metric (i.e., a diamond or a square), then an NN!=0 query can be answered
in O(log^2 n + t) time using O(n log^2 n) space."

A square *is* the L-infinity ball, so the whole Section 2/3 machinery
carries over verbatim once distances are Chebyshev: for a square of
half-extent ``h`` centered at ``c``,

    Delta_i(q) = ||q - c||_inf + h        (max L-inf distance)
    delta_i(q) = max(||q - c||_inf - h, 0)  (min L-inf distance)

exactly mirroring the disk formulas.  (The L1 case is the same after a
45-degree rotation of the plane, which maps diamonds to squares.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .disks import nonzero_nn_indices
from .primitives import EPS, Point

__all__ = ["Square", "linf_dist", "nonzero_nn_bruteforce_linf"]


def linf_dist(p: Point, q: Point) -> float:
    """Chebyshev (L-infinity) distance."""
    return max(abs(p[0] - q[0]), abs(p[1] - q[1]))


@dataclass(frozen=True)
class Square:
    """The axis-aligned square ``[cx - h, cx + h] x [cy - h, cy + h]``."""

    cx: float
    cy: float
    h: float

    def __post_init__(self) -> None:
        if self.h < 0:
            raise ValueError(f"half-extent must be non-negative, got {self.h}")

    @property
    def center(self) -> Point:
        """Center as an ``(x, y)`` tuple."""
        return (self.cx, self.cy)

    # ------------------------------------------------------------------
    # The paper's Delta / delta, in the L-infinity metric.
    # ------------------------------------------------------------------
    def max_dist(self, q: Point) -> float:
        """``Delta(q)``: largest L-inf distance from *q* to the square."""
        return linf_dist(q, self.center) + self.h

    def min_dist(self, q: Point) -> float:
        """``delta(q)``: smallest L-inf distance from *q* to the square."""
        return max(linf_dist(q, self.center) - self.h, 0.0)

    def contains_point(self, q: Point, tol: float = EPS) -> bool:
        """Whether *q* lies in the closed square."""
        return linf_dist(q, self.center) <= self.h + tol


def nonzero_nn_bruteforce_linf(squares: List[Square], q: Point) -> List[int]:
    """``NN!=0(q)`` under L-infinity, by the Lemma 2.1 predicate."""
    return nonzero_nn_indices([s.min_dist(q) for s in squares],
                              [s.max_dist(q) for s in squares])
