"""Halfplane intersection by successive convex-polygon clipping.

The discrete-case analysis (Lemma 2.13 / Theorem 2.14) works with the
dominance regions ``K_ij = {x : Delta_j(x) <= delta_i(x)}``: the set of
query points whose *farthest* possible distance to ``P_j`` is at most their
*nearest* possible distance to ``P_i``.  Via the lifting ``f(x, p) =
|p|^2 - 2<x, p>`` each pairwise condition ``f(x, p_ja) <= f(x, p_ib)``
becomes a halfplane, so ``K_ij`` is the intersection of at most ``k^2``
halfplanes — a convex polygon whose boundary is the paper's convex
polygonal curve ``gamma_ij`` with ``O(k)`` vertices.

We clip a large bounding square against each halfplane in turn
(Sutherland–Hodgman).  ``O(m h)`` for ``m`` halfplanes and output size
``h`` — not the optimal ``O(m log m)``, but branch-free, robust, and more
than fast enough for the ``k <= 8`` regimes the paper (and our benchmarks)
consider.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .primitives import EPS, Point

__all__ = ["Halfplane", "clip_polygon", "halfplane_intersection", "polygon_area"]

#: Default half-extent of the clipping square used to bound intersections.
DEFAULT_BOUND = 1e7


@dataclass(frozen=True)
class Halfplane:
    """The closed halfplane ``a*x + b*y <= c``."""

    a: float
    b: float
    c: float

    def value(self, p: Point) -> float:
        """Signed slack ``a*x + b*y - c`` (non-positive inside)."""
        return self.a * p[0] + self.b * p[1] - self.c

    def contains(self, p: Point, tol: float = EPS) -> bool:
        """Whether *p* satisfies the constraint (with tolerance)."""
        scale = max(1.0, abs(self.a) + abs(self.b), abs(self.c))
        return self.value(p) <= tol * scale


def _edge_crossing(p: Point, q: Point, hp: Halfplane) -> Point:
    """Intersection of segment ``pq`` with the boundary line of *hp*.

    Callers guarantee the endpoints straddle the line, so the denominator
    is bounded away from zero.
    """
    vp = hp.value(p)
    vq = hp.value(q)
    t = vp / (vp - vq)
    return (p[0] + t * (q[0] - p[0]), p[1] + t * (q[1] - p[1]))


def clip_polygon(polygon: Sequence[Point], hp: Halfplane,
                 tol: float = EPS) -> List[Point]:
    """Clip a convex polygon (CCW vertex list) against one halfplane.

    Returns the clipped polygon, possibly empty.  Vertices exactly on the
    boundary (within tolerance) are kept, so tangent constraints do not
    erode the polygon.
    """
    if not polygon:
        return []
    out: List[Point] = []
    n = len(polygon)
    scale = max(1.0, abs(hp.a) + abs(hp.b), abs(hp.c))
    band = tol * scale
    for i in range(n):
        cur = polygon[i]
        nxt = polygon[(i + 1) % n]
        cur_in = hp.value(cur) <= band
        nxt_in = hp.value(nxt) <= band
        if cur_in:
            out.append(cur)
            if not nxt_in:
                out.append(_edge_crossing(cur, nxt, hp))
        elif nxt_in:
            out.append(_edge_crossing(cur, nxt, hp))
    return _dedupe_ring(out)


def _dedupe_ring(poly: List[Point], tol: float = 1e-9) -> List[Point]:
    """Remove consecutive (cyclically) duplicate vertices."""
    if not poly:
        return poly
    out: List[Point] = []
    for p in poly:
        if out and abs(p[0] - out[-1][0]) <= tol and abs(p[1] - out[-1][1]) <= tol:
            continue
        out.append(p)
    while len(out) >= 2 and abs(out[0][0] - out[-1][0]) <= tol \
            and abs(out[0][1] - out[-1][1]) <= tol:
        out.pop()
    return out


def halfplane_intersection(halfplanes: Sequence[Halfplane],
                           bound: float = DEFAULT_BOUND) -> List[Point]:
    """Intersection of halfplanes, clipped to ``[-bound, bound]^2``.

    Returns the CCW vertex list of the resulting convex polygon (empty list
    when the intersection is empty).  The bounding square makes unbounded
    intersections representable; callers that care can detect boundary
    contact by comparing coordinates against ``bound``.
    """
    poly: List[Point] = [(-bound, -bound), (bound, -bound),
                         (bound, bound), (-bound, bound)]
    for hp in halfplanes:
        poly = clip_polygon(poly, hp)
        if not poly:
            return []
    return poly


def polygon_area(polygon: Sequence[Point]) -> float:
    """Signed area of a polygon (positive for CCW orientation)."""
    n = len(polygon)
    if n < 3:
        return 0.0
    total = 0.0
    for i in range(n):
        x1, y1 = polygon[i]
        x2, y2 = polygon[(i + 1) % n]
        total += x1 * y2 - x2 * y1
    return 0.5 * total


def polygon_contains(polygon: Sequence[Point], p: Point,
                     tol: float = EPS) -> bool:
    """Whether a convex CCW polygon contains *p* (closed, with tolerance)."""
    n = len(polygon)
    if n == 0:
        return False
    if n == 1:
        return abs(p[0] - polygon[0][0]) <= tol and abs(p[1] - polygon[0][1]) <= tol
    for i in range(n):
        ax, ay = polygon[i]
        bx, by = polygon[(i + 1) % n]
        cross = (bx - ax) * (p[1] - ay) - (by - ay) * (p[0] - ax)
        span = max(1.0, abs(bx - ax) + abs(by - ay),
                   abs(p[0] - ax) + abs(p[1] - ay))
        if cross < -tol * span * span:
            return False
    return True
