"""Planar arrangements of line segments with face extraction.

This is the substrate behind the exact probabilistic Voronoi diagram
``V_Pr`` of Theorem 4.2 / Lemma 4.1: the ``O(N^2)`` bisector lines of all
pairs of possible site locations are clipped to a bounding box and their
arrangement is built here; each face of the arrangement has a constant
distance order to all sites and therefore constant quantification
probabilities.

The paper invokes the randomized incremental construction of [AS00]; we use
the straightforward quadratic algorithm (all pairwise intersections, then a
half-edge face traversal).  For the instance sizes where an ``Theta(N^4)``
object is storable at all, the quadratic construction is not the
bottleneck, and its robustness story is much simpler: a single tolerance
merges coincident vertices, after which the combinatorics are exact.

Face loops are extracted by the standard rotation system: outgoing
half-edges are sorted by angle around each vertex and ``next(h)`` is the
clockwise predecessor of ``twin(h)``, which walks each face with its
interior on the left.  Counts satisfy Euler's relation
``V - E + F = 1 + C`` (checked in tests).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .primitives import Point, dist
from .segments import segment_intersection

__all__ = ["SegmentArrangement"]


class _VertexRegistry:
    """Hash-grid vertex deduplication at a fixed tolerance."""

    def __init__(self, tol: float) -> None:
        self.tol = tol
        self._grid: Dict[Tuple[int, int], List[int]] = {}
        self.coords: List[Point] = []

    def insert(self, p: Point) -> int:
        inv = 1.0 / self.tol
        cx = math.floor(p[0] * inv)
        cy = math.floor(p[1] * inv)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for vid in self._grid.get((cx + dx, cy + dy), ()):
                    if dist(p, self.coords[vid]) <= self.tol:
                        return vid
        vid = len(self.coords)
        self.coords.append(p)
        self._grid.setdefault((cx, cy), []).append(vid)
        return vid


class SegmentArrangement:
    """Arrangement of straight-line segments.

    Parameters
    ----------
    segments:
        Input segments as ``((x1, y1), (x2, y2))`` pairs.  Zero-length
        segments are ignored.  Collinear overlapping segments are not
        supported (the ``V_Pr`` builder deduplicates identical bisectors
        upstream); crossing, touching and shared-endpoint configurations
        are all handled.
    tol:
        Vertex merge tolerance.  Nearly-coincident intersection points
        (e.g. three bisectors through one circumcenter) merge into a single
        higher-degree vertex.
    """

    def __init__(self, segments: Sequence[Tuple[Point, Point]],
                 tol: float = 1e-9) -> None:
        self.tol = tol
        self._registry = _VertexRegistry(tol)
        self._build(list(segments))

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def _build(self, segments: List[Tuple[Point, Point]]) -> None:
        segments = [(a, b) for a, b in segments if dist(a, b) > self.tol]
        cuts: List[List[Point]] = [[a, b] for a, b in segments]
        for i in range(len(segments)):
            a, b = segments[i]
            for j in range(i + 1, len(segments)):
                c, d = segments[j]
                p = segment_intersection(a, b, c, d)
                if p is not None:
                    cuts[i].append(p)
                    cuts[j].append(p)

        edge_set: Dict[Tuple[int, int], None] = {}
        for (a, b), pts in zip(segments, cuts):
            dx = b[0] - a[0]
            dy = b[1] - a[1]
            pts.sort(key=lambda p: (p[0] - a[0]) * dx + (p[1] - a[1]) * dy)
            vids = [self._registry.insert(p) for p in pts]
            for u, v in zip(vids, vids[1:]):
                if u != v:
                    key = (min(u, v), max(u, v))
                    edge_set[key] = None

        self.vertices: List[Point] = self._registry.coords
        self.edges: List[Tuple[int, int]] = list(edge_set.keys())
        self._build_faces()

    def _build_faces(self) -> None:
        coords = self.vertices
        # Rotation system: outgoing half-edges sorted CCW around each vertex.
        outgoing: Dict[int, List[int]] = {}
        half_src: List[int] = []
        half_dst: List[int] = []
        for (u, v) in self.edges:
            for s, t in ((u, v), (v, u)):
                hid = len(half_src)
                half_src.append(s)
                half_dst.append(t)
                outgoing.setdefault(s, []).append(hid)

        def angle(hid: int) -> float:
            s, t = half_src[hid], half_dst[hid]
            return math.atan2(coords[t][1] - coords[s][1],
                              coords[t][0] - coords[s][0])

        position: Dict[int, int] = {}
        for s, hids in outgoing.items():
            hids.sort(key=angle)
            for pos, hid in enumerate(hids):
                position[hid] = pos

        def twin(hid: int) -> int:
            return hid ^ 1

        def next_half(hid: int) -> int:
            # Arrive at v via hid; leave along the CW predecessor of the
            # reversed half-edge, keeping the face interior on the left.
            t = twin(hid)
            ring = outgoing[half_src[t]]
            pos = position[t]
            return ring[(pos - 1) % len(ring)]

        visited = [False] * len(half_src)
        loops: List[List[int]] = []
        for hid in range(len(half_src)):
            if visited[hid]:
                continue
            loop = []
            cur = hid
            while not visited[cur]:
                visited[cur] = True
                loop.append(cur)
                cur = next_half(cur)
            loops.append(loop)

        self._half_src = half_src
        self._half_dst = half_dst
        self._half_index: Dict[Tuple[int, int], int] = {
            (half_src[h], half_dst[h]): h for h in range(len(half_src))
        }
        self._half_loop: List[int] = [0] * len(half_src)
        self.face_loops: List[List[int]] = []     # vertex id loops
        self.face_areas: List[float] = []
        for loop_id, loop in enumerate(loops):
            vloop = [half_src[h] for h in loop]
            area = 0.0
            for a, b in zip(vloop, vloop[1:] + vloop[:1]):
                area += coords[a][0] * coords[b][1] - coords[b][0] * coords[a][1]
            self.face_loops.append(vloop)
            self.face_areas.append(0.5 * area)
            for h in loop:
                self._half_loop[h] = loop_id

    def loop_of_halfedge(self, src: int, dst: int) -> int:
        """Index (into ``face_loops``) of the face left of half-edge src->dst.

        The rotation-system traversal walks every face with its interior on
        the left, so the loop containing a half-edge is exactly the face on
        its left side.  Used by the slab point locator to map an edge found
        above/below a query to a face id.
        """
        return self._half_loop[self._half_index[(src, dst)]]

    # ------------------------------------------------------------------
    # Counts.
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of distinct arrangement vertices."""
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        """Number of arrangement edges (maximal pieces between vertices)."""
        return len(self.edges)

    @property
    def num_components(self) -> int:
        """Connected components of the arrangement graph."""
        parent = list(range(len(self.vertices)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in self.edges:
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
        used = {find(u) for u, v in self.edges} | {find(v) for u, v in self.edges}
        return len(used)

    @property
    def num_faces(self) -> int:
        """Number of faces including the unbounded face (Euler relation)."""
        if not self.edges:
            return 1
        return self.num_edges - self.num_vertices + 1 + self.num_components

    @property
    def complexity(self) -> int:
        """Total complexity ``V + E + F`` — the paper's diagram complexity."""
        return self.num_vertices + self.num_edges + self.num_faces

    # ------------------------------------------------------------------
    # Face geometry.
    # ------------------------------------------------------------------
    def bounded_face_loops(self) -> List[List[int]]:
        """Vertex loops of the bounded faces (positive signed area).

        The rotation-system traversal yields every face once; bounded faces
        come out with CCW (positive-area) loops, the unbounded face(s) with
        negative total area.
        """
        return [loop for loop, area in zip(self.face_loops, self.face_areas)
                if area > self.tol]

    def bounded_face_count(self) -> int:
        """Number of bounded faces."""
        return len(self.bounded_face_loops())

    def face_interior_points(self) -> List[Point]:
        """One interior sample point per bounded face.

        Uses the classic convex-corner/triangle method, which is exact for
        simple faces (all faces of a line arrangement are convex, so the
        ``V_Pr`` use case is fully covered).
        """
        out: List[Point] = []
        coords = self.vertices
        for loop in self.bounded_face_loops():
            pts = [coords[v] for v in loop]
            out.append(_interior_point(pts))
        return out


def _interior_point(poly: List[Point]) -> Point:
    """An interior point of a simple CCW polygon."""
    n = len(poly)
    if n == 3:
        return ((poly[0][0] + poly[1][0] + poly[2][0]) / 3.0,
                (poly[0][1] + poly[1][1] + poly[2][1]) / 3.0)
    # Find a strictly convex corner (the lowest-then-leftmost vertex is one).
    idx = min(range(n), key=lambda i: (poly[i][1], poly[i][0]))
    a = poly[(idx - 1) % n]
    b = poly[idx]
    c = poly[(idx + 1) % n]
    inside: Optional[Point] = None
    best = -1.0
    for i, q in enumerate(poly):
        if i in ((idx - 1) % n, idx, (idx + 1) % n):
            continue
        if _in_triangle(q, a, b, c):
            d = _line_dist(q, a, c)
            if d > best:
                best = d
                inside = q
    if inside is None:
        return ((a[0] + b[0] + c[0]) / 3.0, (a[1] + b[1] + c[1]) / 3.0)
    return ((b[0] + inside[0]) / 2.0, (b[1] + inside[1]) / 2.0)


def _in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool:
    def cross(o: Point, u: Point, v: Point) -> float:
        return (u[0] - o[0]) * (v[1] - o[1]) - (u[1] - o[1]) * (v[0] - o[0])

    d1 = cross(a, b, p)
    d2 = cross(b, c, p)
    d3 = cross(c, a, p)
    has_neg = d1 < 0 or d2 < 0 or d3 < 0
    has_pos = d1 > 0 or d2 > 0 or d3 > 0
    return not (has_neg and has_pos)


def _line_dist(p: Point, a: Point, b: Point) -> float:
    num = abs((b[0] - a[0]) * (a[1] - p[1]) - (a[0] - p[0]) * (b[1] - a[1]))
    den = math.hypot(b[0] - a[0], b[1] - a[1])
    return num / den if den > 0 else 0.0
