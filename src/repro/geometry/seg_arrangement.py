"""Planar arrangements of line segments with face extraction.

This is the substrate behind the exact probabilistic Voronoi diagram
``V_Pr`` of Theorem 4.2 / Lemma 4.1: the ``O(N^2)`` bisector lines of all
pairs of possible site locations are clipped to a bounding box and their
arrangement is built here; each face of the arrangement has a constant
distance order to all sites and therefore constant quantification
probabilities.

The paper invokes the randomized incremental construction of [AS00]; we use
the straightforward quadratic algorithm (all pairwise intersections, then a
half-edge face traversal).  Two build paths produce **identical**
arrangements:

* ``mode="vector"`` (default) — chunked all-pairs segment intersection as
  flat coordinate arrays (:func:`~repro.geometry.segments.
  segment_intersections_batch`), cut-point ordering via one global
  ``lexsort``, and a vectorized hash-grid vertex registry: exact duplicates
  collapse through a quantized-cell ``unique`` pass, and only the rare
  *clustered* points (some other distinct point in their 3x3 tolerance-cell
  neighborhood — e.g. three bisectors through one circumcenter) go through
  the sequential probe, whose merge semantics are order-dependent.
* ``mode="scalar"`` — the original pure-Python pair loop, retained as the
  reference oracle.

Both paths evaluate the same IEEE-754 expressions with the same tolerance
comparisons, so vertices, edges and faces agree *bitwise* (property-tested
in ``tests/test_vectorized_kernels.py``).

Face loops are extracted by the standard rotation system: outgoing
half-edges are sorted by angle around each vertex (``np.argsort`` over one
``arctan2`` pass) and ``next(h)`` is the clockwise predecessor of
``twin(h)``, which walks each face with its interior on the left.  Counts
satisfy Euler's relation ``V - E + F = 1 + C`` (checked in tests).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from .primitives import Point, dist
from .segments import segment_intersection, segment_intersections_batch

__all__ = ["SegmentArrangement"]

# Pair-block size for the chunked all-pairs intersection sweep: bounds the
# peak size of the per-chunk coordinate arrays while keeping each NumPy
# pass long enough to amortize dispatch overhead.
_PAIR_CHUNK = 1 << 21


class _VertexRegistry:
    """Hash-grid vertex deduplication at a fixed tolerance (scalar probe)."""

    def __init__(self, tol: float) -> None:
        self.tol = tol
        self._grid: Dict[Tuple[int, int], List[int]] = {}
        self.coords: List[Point] = []

    def insert(self, p: Point) -> int:
        inv = 1.0 / self.tol
        cx = math.floor(p[0] * inv)
        cy = math.floor(p[1] * inv)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for vid in self._grid.get((cx + dx, cy + dy), ()):
                    if dist(p, self.coords[vid]) <= self.tol:
                        return vid
        vid = len(self.coords)
        self.coords.append(p)
        self._grid.setdefault((cx, cy), []).append(vid)
        return vid


class SegmentArrangement:
    """Arrangement of straight-line segments.

    Parameters
    ----------
    segments:
        Input segments as ``((x1, y1), (x2, y2))`` pairs or an ``(S, 4)``
        array of ``(x1, y1, x2, y2)`` rows.  Zero-length segments are
        ignored.  Collinear overlapping segments are not supported (the
        ``V_Pr`` builder deduplicates identical bisectors upstream);
        crossing, touching and shared-endpoint configurations are all
        handled.
    tol:
        Vertex merge tolerance.  Nearly-coincident intersection points
        (e.g. three bisectors through one circumcenter) merge into a single
        higher-degree vertex.
    mode:
        ``"vector"`` (default) builds through the batched NumPy kernels;
        ``"scalar"`` forces the original pure-Python construction.  The
        two produce bitwise-identical arrangements.
    """

    def __init__(self, segments, tol: float = 1e-9,
                 mode: str = "vector") -> None:
        if mode not in ("vector", "scalar"):
            raise ValueError(f"unknown build mode {mode!r}")
        self.tol = tol
        self.mode = mode
        self._vx: Optional[np.ndarray] = None
        self._vy: Optional[np.ndarray] = None
        self._earr: Optional[np.ndarray] = None
        self._vertices_list: Optional[List[Point]] = None
        self._edges_list: Optional[List[Tuple[int, int]]] = None
        if mode == "scalar":
            self._build_scalar(list(segments))
        else:
            self._build_vector(segments)
        if self._vx is None:
            self._vx = np.array([p[0] for p in self.vertices],
                                dtype=np.float64)
            self._vy = np.array([p[1] for p in self.vertices],
                                dtype=np.float64)
        self._build_faces()

    @property
    def vertices(self) -> List[Point]:
        """Vertex coordinates as ``(x, y)`` tuples (materialized lazily —
        the vectorized pipeline works off the coordinate arrays)."""
        if self._vertices_list is None:
            self._vertices_list = list(zip(self._vx.tolist(),
                                           self._vy.tolist()))
        return self._vertices_list

    @property
    def edges(self) -> List[Tuple[int, int]]:
        """Edges as ``(u, v)`` vertex-id tuples (materialized lazily)."""
        if self._edges_list is None:
            self._edges_list = list(map(tuple, self._earr.tolist()))
        return self._edges_list

    # ------------------------------------------------------------------
    # Construction: scalar reference path.
    # ------------------------------------------------------------------
    def _build_scalar(self, segments: List[Tuple[Point, Point]]) -> None:
        registry = _VertexRegistry(self.tol)
        segments = [(a, b) for a, b in segments if dist(a, b) > self.tol]
        cuts: List[List[Point]] = [[a, b] for a, b in segments]
        for i in range(len(segments)):
            a, b = segments[i]
            for j in range(i + 1, len(segments)):
                c, d = segments[j]
                p = segment_intersection(a, b, c, d)
                if p is not None:
                    cuts[i].append(p)
                    cuts[j].append(p)

        edge_set: Dict[Tuple[int, int], None] = {}
        for (a, b), pts in zip(segments, cuts):
            dx = b[0] - a[0]
            dy = b[1] - a[1]
            pts.sort(key=lambda p: (p[0] - a[0]) * dx + (p[1] - a[1]) * dy)
            vids = [registry.insert(p) for p in pts]
            for u, v in zip(vids, vids[1:]):
                if u != v:
                    key = (min(u, v), max(u, v))
                    edge_set[key] = None

        self._vertices_list = registry.coords
        self._edges_list = list(edge_set.keys())

    # ------------------------------------------------------------------
    # Construction: vectorized path.
    # ------------------------------------------------------------------
    def _build_vector(self, segments) -> None:
        arr = np.asarray(segments, dtype=np.float64)
        if arr.size == 0:
            self._empty_vector()
            return
        arr = arr.reshape(len(arr), 4)
        ax, ay, bx, by = arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]
        # Zero-length filter: same sqrt(dx*dx + dy*dy) > tol predicate as
        # the scalar path ((a-b)**2 == (b-a)**2 bitwise).
        dxs = bx - ax
        dys = by - ay
        keep = np.sqrt(dxs * dxs + dys * dys) > self.tol
        ax, ay, bx, by = ax[keep], ay[keep], bx[keep], by[keep]
        dxs, dys = dxs[keep], dys[keep]
        s_count = len(ax)
        if s_count == 0:
            self._empty_vector()
            return

        # All-pairs intersections, chunked over lexicographic (i, j) pairs.
        hit_i: List[np.ndarray] = []
        hit_j: List[np.ndarray] = []
        hit_x: List[np.ndarray] = []
        hit_y: List[np.ndarray] = []
        row = 0
        while row < s_count - 1:
            hi = row
            pairs = 0
            while hi < s_count - 1 and \
                    (pairs == 0 or pairs + (s_count - 1 - hi) <= _PAIR_CHUNK):
                pairs += s_count - 1 - hi
                hi += 1
            rows = np.arange(row, hi, dtype=np.intp)
            counts = s_count - 1 - rows
            pair_i = np.repeat(rows, counts)
            offs = np.concatenate(([0], np.cumsum(counts)[:-1]))
            pair_j = (np.arange(pairs, dtype=np.intp)
                      - np.repeat(offs, counts) + np.repeat(rows + 1, counts))
            px, py, hit = segment_intersections_batch(
                ax, ay, bx, by, pair_i, pair_j)
            hit_i.append(pair_i[hit])
            hit_j.append(pair_j[hit])
            hit_x.append(px[hit])
            hit_y.append(py[hit])
            row = hi
        if hit_i:
            cut_i = np.concatenate(hit_i)
            cut_j = np.concatenate(hit_j)
            cut_x = np.concatenate(hit_x)
            cut_y = np.concatenate(hit_y)
        else:
            cut_i = cut_j = np.empty(0, dtype=np.intp)
            cut_x = cut_y = np.empty(0, dtype=np.float64)

        # Each intersection cuts both parent segments; within a segment the
        # scalar code appends partners in ascending order.
        seg_of = np.concatenate((cut_i, cut_j))
        partner = np.concatenate((cut_j, cut_i))
        cx = np.concatenate((cut_x, cut_x))
        cy = np.concatenate((cut_y, cut_y))
        order = np.lexsort((partner, seg_of))
        seg_of, cx, cy = seg_of[order], cx[order], cy[order]
        cut_counts = np.bincount(seg_of, minlength=s_count)
        cut_offs = np.concatenate(([0], np.cumsum(cut_counts)[:-1]))
        pos_in_seg = np.arange(len(seg_of)) - cut_offs[seg_of]

        # Flat point sequence per segment: endpoints at positions 0/1, cut
        # points after — the scalar pre-sort list order.
        ep_seg = np.repeat(np.arange(s_count, dtype=np.intp), 2)
        ep_x = np.empty(2 * s_count)
        ep_x[0::2], ep_x[1::2] = ax, bx
        ep_y = np.empty(2 * s_count)
        ep_y[0::2], ep_y[1::2] = ay, by
        ep_pos = np.empty(2 * s_count, dtype=np.intp)
        ep_pos[0::2], ep_pos[1::2] = 0, 1
        fseg = np.concatenate((ep_seg, seg_of))
        fx = np.concatenate((ep_x, cx))
        fy = np.concatenate((ep_y, cy))
        fpos = np.concatenate((ep_pos, pos_in_seg + 2))
        # Along-segment ordering: the scalar stable sort by the projection
        # key, reproduced by lexsort with the pre-sort position as the
        # tie-breaker.
        key = (fx - ax[fseg]) * dxs[fseg] + (fy - ay[fseg]) * dys[fseg]
        order = np.lexsort((fpos, key, fseg))
        fseg = fseg[order]
        fx = fx[order]
        fy = fy[order]

        vids = self._register_vertices(fx, fy)

        # Consecutive distinct vertices along each segment become edges;
        # dict-style first-occurrence dedup keeps the scalar edge order.
        same = fseg[1:] == fseg[:-1]
        eu = vids[:-1][same]
        ev = vids[1:][same]
        ne = eu != ev
        eu, ev = eu[ne], ev[ne]
        lo = np.minimum(eu, ev)
        hi = np.maximum(eu, ev)
        if len(lo):
            keys = lo * np.intp(len(self._vx)) + hi
            _, first = np.unique(keys, return_index=True)
            first.sort()
            self._earr = np.stack((lo[first], hi[first]), axis=1)
        else:
            self._earr = np.empty((0, 2), dtype=np.intp)

    def _empty_vector(self) -> None:
        self._vx = np.empty(0, dtype=np.float64)
        self._vy = np.empty(0, dtype=np.float64)
        self._earr = np.empty((0, 2), dtype=np.intp)

    def _register_vertices(self, fx: np.ndarray,
                           fy: np.ndarray) -> np.ndarray:
        """Vertex ids for the flat point sequence, scalar-registry faithful.

        Exact duplicates collapse through one ``unique`` pass.  A point can
        only merge with a *distinct* point when the two share a 3x3
        quantized-cell neighborhood, so only those *clustered* occurrences
        replay the scalar sequential probe (whose first-match-in-scan-order
        semantics are order-dependent); isolated points — the huge majority
        — register vectorized.  Registration order (and therefore vertex id
        numbering) follows the flat sequence exactly as the scalar loop's.
        """
        tol = self.tol
        total = len(fx)
        carr = fx + 1j * fy
        uvals, first_idx, inverse = np.unique(
            carr, return_index=True, return_inverse=True)
        ux = fx[first_idx]
        uy = fy[first_idx]
        inv = 1.0 / tol
        cell_x = np.floor(ux * inv).astype(np.int64)
        cell_y = np.floor(uy * inv).astype(np.int64)
        # Compact int64 cell keys (rank-compressed per axis — raw cell
        # coordinates can overflow a pairing product at tol = 1e-9).
        ucx = np.unique(cell_x)
        ucy = np.unique(cell_y)
        stride = np.int64(len(ucy) + 2)
        ax_pos: Dict[int, np.ndarray] = {}
        ax_ok: Dict[int, np.ndarray] = {}
        ay_pos: Dict[int, np.ndarray] = {}
        ay_ok: Dict[int, np.ndarray] = {}
        for d in (0, 1):
            posx = np.searchsorted(ucx, cell_x + d)
            okx = posx < len(ucx)
            posx = np.minimum(posx, len(ucx) - 1)
            ax_pos[d], ax_ok[d] = posx, okx & (ucx[posx] == cell_x + d)
        for d in (-1, 0, 1):
            posy = np.searchsorted(ucy, cell_y + d)
            oky = posy < len(ucy)
            posy = np.minimum(posy, len(ucy) - 1)
            ay_pos[d], ay_ok[d] = posy, oky & (ucy[posy] == cell_y + d)
        keys0 = ax_pos[0] * stride + ay_pos[0]
        occ_sorted, occ_counts = np.unique(keys0, return_counts=True)
        self_pos = np.searchsorted(occ_sorted, keys0)
        # "Clustered" is symmetric, so scanning the forward half of the
        # 3x3 neighborhood and scatter-flagging the cells it hits covers
        # the backward half for free.
        clustered = occ_counts[self_pos] > 1
        hit = np.zeros(len(occ_sorted), dtype=bool)
        for dxc, dyc in ((0, 1), (1, -1), (1, 0), (1, 1)):
            nb = ax_pos[dxc] * stride + ay_pos[dyc]
            pos = np.searchsorted(occ_sorted, nb)
            pos_c = np.minimum(pos, len(occ_sorted) - 1)
            found = ax_ok[dxc] & ay_ok[dyc] & (occ_sorted[pos_c] == nb)
            clustered |= found
            hit[pos_c[found]] = True
        clustered |= hit[self_pos]

        # Registration events in flat order: isolated uniques register at
        # their first occurrence; clustered occurrences replay the probe.
        occ_clustered = clustered[inverse]
        reg_pos_parts = [first_idx[~clustered]]
        # For clustered occurrences: flat position of the registered point
        # each occurrence resolves to (itself if it registered anew).
        resolve: Dict[int, int] = {}
        cl_positions = np.flatnonzero(occ_clustered)
        if len(cl_positions):
            grid: Dict[Tuple[int, int], List[Tuple[float, float, int]]] = {}
            fx_l = fx[cl_positions].tolist()
            fy_l = fy[cl_positions].tolist()
            new_regs: List[int] = []
            sqrt = math.sqrt
            floor = math.floor
            for p, px_, py_ in zip(cl_positions.tolist(), fx_l, fy_l):
                cxi = floor(px_ * inv)
                cyi = floor(py_ * inv)
                found = -1
                for ddx in (-1, 0, 1):
                    if found >= 0:
                        break
                    for ddy in (-1, 0, 1):
                        if found >= 0:
                            break
                        for rx_, ry_, r in grid.get((cxi + ddx, cyi + ddy),
                                                    ()):
                            dx_ = px_ - rx_
                            dy_ = py_ - ry_
                            # dist()'s sqrt(dx*dx + dy*dy), inlined.
                            if sqrt(dx_ * dx_ + dy_ * dy_) <= tol:
                                found = r
                                break
                if found >= 0:
                    resolve[p] = found
                else:
                    resolve[p] = p
                    grid.setdefault((cxi, cyi), []).append((px_, py_, p))
                    new_regs.append(p)
            reg_pos_parts.append(np.array(new_regs, dtype=np.intp))
        reg_pos = np.concatenate(reg_pos_parts).astype(np.intp)
        reg_pos.sort()
        # vid = rank of the registration event in flat order.
        vid_of_occ = np.empty(total, dtype=np.intp)
        iso = ~occ_clustered
        vid_of_occ[iso] = np.searchsorted(reg_pos, first_idx[inverse[iso]])
        if len(cl_positions):
            targets = np.array([resolve[p] for p in cl_positions.tolist()],
                               dtype=np.intp)
            vid_of_occ[cl_positions] = np.searchsorted(reg_pos, targets)
        self._vx = fx[reg_pos]
        self._vy = fy[reg_pos]
        return vid_of_occ

    # ------------------------------------------------------------------
    # Face extraction (shared by both build paths).
    # ------------------------------------------------------------------
    def _build_faces(self) -> None:
        n_half = 2 * self.num_edges
        self._half_index: Optional[Dict[Tuple[int, int], int]] = None
        self._face_loops_cache: Optional[List[List[int]]] = None
        if n_half == 0:
            self._half_src = np.empty(0, dtype=np.intp)
            self._half_dst = np.empty(0, dtype=np.intp)
            self._half_loop = np.empty(0, dtype=np.intp)
            self._loops_flat = np.empty(0, dtype=np.intp)
            self._loop_lens = np.empty(0, dtype=np.intp)
            self._loop_offs = np.empty(0, dtype=np.intp)
            self.face_areas = np.empty(0, dtype=np.float64)
            return
        earr = self._earr
        if earr is None:
            earr = np.asarray(self._edges_list, dtype=np.intp).reshape(-1, 2)
            self._earr = earr
        half_src = np.empty(n_half, dtype=np.intp)
        half_dst = np.empty(n_half, dtype=np.intp)
        half_src[0::2], half_src[1::2] = earr[:, 0], earr[:, 1]
        half_dst[0::2], half_dst[1::2] = earr[:, 1], earr[:, 0]
        vx, vy = self._vx, self._vy
        # Rotation system: outgoing half-edges sorted CCW around each
        # vertex — one arctan2 pass and one stable lexsort.
        ang = np.arctan2(vy[half_dst] - vy[half_src],
                         vx[half_dst] - vx[half_src])
        hid = np.arange(n_half, dtype=np.intp)
        # Exact (src, angle) ties would mean two overlapping collinear
        # edges out of one vertex — unsupported input — so two sort keys
        # suffice and the stable sort keeps half-edge id order regardless.
        order = np.lexsort((ang, half_src))
        rank = np.empty(n_half, dtype=np.intp)
        rank[order] = np.arange(n_half)
        src_sorted = half_src[order]
        is_start = np.empty(n_half, dtype=bool)
        is_start[0] = True
        is_start[1:] = src_sorted[1:] != src_sorted[:-1]
        group_start = np.flatnonzero(is_start)
        group_end = np.append(group_start[1:], n_half)
        gidx = np.cumsum(is_start) - 1
        gstart = group_start[gidx]
        gend = group_end[gidx]
        pos = np.arange(n_half)
        prev_pos = np.where(pos == gstart, gend - 1, pos - 1)
        # next(h) = CW predecessor of twin(h) in twin's ring: walks each
        # face with its interior on the left.
        next_arr = order[prev_pos[rank[hid ^ 1]]]

        # Cycle extraction without a sequential walk: pointer doubling
        # labels every half-edge with its cycle's minimum id — the id the
        # scan-order discovery would start the loop at — then a
        # multi-cursor sweep advances all cycles in lockstep to lay the
        # loops out flat (iterations = longest face boundary, not total
        # half-edge count).
        lbl = hid.copy()
        ptr = next_arr.copy()
        for _ in range(max(n_half, 2).bit_length()):
            new = np.minimum(lbl, lbl[ptr])
            if np.array_equal(new, lbl):
                break  # labels converge after ceil(log2(longest face))
            lbl = new
            ptr = ptr[ptr]
        reps = np.flatnonzero(lbl == hid)
        lens = np.bincount(lbl, minlength=n_half)[reps]
        loop_offs = np.concatenate(([0], np.cumsum(lens)[:-1]))
        flat = np.empty(n_half, dtype=np.intp)
        cur = reps.copy()
        cursor = loop_offs.copy()
        remaining = lens.copy()
        while len(cur):
            flat[cursor] = cur
            cur = next_arr[cur]
            cursor = cursor + 1
            remaining = remaining - 1
            alive = remaining > 0
            if not alive.all():
                cur = cur[alive]
                cursor = cursor[alive]
                remaining = remaining[alive]

        self._half_src = half_src
        self._half_dst = half_dst
        self._loops_flat = flat
        self._loop_lens = lens
        self._loop_offs = loop_offs
        self._half_loop = np.searchsorted(reps, lbl)
        # Shoelace per loop: consecutive loop vertices are exactly
        # (src, dst) of each half-edge, so one vectorized pass suffices.
        contrib = vx[half_src] * vy[half_dst] - vx[half_dst] * vy[half_src]
        self.face_areas = 0.5 * np.add.reduceat(contrib[flat], loop_offs)

    @property
    def face_loops(self) -> List[List[int]]:
        """Vertex id loops, one per face (materialized lazily).

        The build keeps loops as flat arrays; the list-of-lists view is
        only assembled when something asks for it (tests, callers walking
        individual faces) — the hot ``V_Pr`` pipeline never does.
        """
        if self._face_loops_cache is None:
            verts = self._half_src[self._loops_flat].tolist()
            offs = self._loop_offs.tolist()
            ends = offs[1:] + [len(verts)]
            self._face_loops_cache = [verts[o:e] for o, e in zip(offs, ends)]
        return self._face_loops_cache

    def loop_of_halfedge(self, src: int, dst: int) -> int:
        """Index (into ``face_loops``) of the face left of half-edge src->dst.

        The rotation-system traversal walks every face with its interior on
        the left, so the loop containing a half-edge is exactly the face on
        its left side.  Used by the slab point locator to map an edge found
        above/below a query to a face id.
        """
        if self._half_index is None:
            self._half_index = {
                (int(s), int(d)): h
                for h, (s, d) in enumerate(zip(self._half_src,
                                               self._half_dst))
            }
        return int(self._half_loop[self._half_index[(src, dst)]])

    # ------------------------------------------------------------------
    # Counts.
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of distinct arrangement vertices."""
        if self._vx is not None:
            return len(self._vx)
        return len(self._vertices_list)

    @property
    def num_edges(self) -> int:
        """Number of arrangement edges (maximal pieces between vertices)."""
        if self._earr is not None:
            return len(self._earr)
        return len(self._edges_list)

    @property
    def num_components(self) -> int:
        """Connected components of the arrangement graph."""
        parent = list(range(len(self.vertices)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in self.edges:
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
        used = {find(u) for u, v in self.edges} | {find(v) for u, v in self.edges}
        return len(used)

    @property
    def num_faces(self) -> int:
        """Number of faces including the unbounded face (Euler relation)."""
        if not self.edges:
            return 1
        return self.num_edges - self.num_vertices + 1 + self.num_components

    @property
    def complexity(self) -> int:
        """Total complexity ``V + E + F`` — the paper's diagram complexity."""
        return self.num_vertices + self.num_edges + self.num_faces

    # ------------------------------------------------------------------
    # Face geometry.
    # ------------------------------------------------------------------
    def bounded_face_loops(self) -> List[List[int]]:
        """Vertex loops of the bounded faces (positive signed area).

        The rotation-system traversal yields every face once; bounded faces
        come out with CCW (positive-area) loops, the unbounded face(s) with
        negative total area.
        """
        return [loop for loop, area in zip(self.face_loops, self.face_areas)
                if area > self.tol]

    def bounded_face_count(self) -> int:
        """Number of bounded faces."""
        return int(np.count_nonzero(np.asarray(self.face_areas) > self.tol))

    def face_interior_points(self) -> List[Point]:
        """One interior sample point per bounded face, as ``(x, y)`` tuples."""
        return list(map(tuple, self.face_interior_array().tolist()))

    def face_interior_array(self) -> np.ndarray:
        """Interior sample points of the bounded faces, as an ``(F, 2)`` array.

        Evaluates the classic convex-corner/triangle method (see
        :func:`_interior_point`, the scalar reference) over all bounded
        faces at once, straight off the flat loop arrays — exact for simple
        faces (all faces of a line arrangement are convex, so the ``V_Pr``
        use case is fully covered).
        """
        bounded = np.asarray(self.face_areas) > self.tol
        n_faces = int(np.count_nonzero(bounded))
        if n_faces == 0:
            return np.empty((0, 2), dtype=np.float64)
        keep = bounded[np.repeat(np.arange(len(self._loop_lens)),
                                 self._loop_lens)]
        flat_v = self._half_src[self._loops_flat[keep]]
        lens = self._loop_lens[bounded]
        total = int(lens.sum())
        offs = np.concatenate(([0], np.cumsum(lens)[:-1]))
        fid = np.repeat(np.arange(n_faces), lens)
        px = self._vx[flat_v]
        py = self._vy[flat_v]
        pos = np.arange(total) - offs[fid]
        # The lowest-then-leftmost vertex is a strictly convex corner; ties
        # resolve to the first loop position, as the scalar min() does —
        # three reduceat passes instead of a multi-key sort.
        min_y = np.minimum.reduceat(py, offs)
        on_min_y = py == min_y[fid]
        min_x = np.minimum.reduceat(np.where(on_min_y, px, np.inf), offs)
        at_corner = on_min_y & (px == min_x[fid])
        b_pos = np.minimum.reduceat(np.where(at_corner, pos, total + 1),
                                    offs)
        a_flat = offs + (b_pos - 1) % lens
        b_flat = offs + b_pos
        c_flat = offs + (b_pos + 1) % lens
        axf, ayf = px[a_flat], py[a_flat]
        bxf, byf = px[b_flat], py[b_flat]
        cxf, cyf = px[c_flat], py[c_flat]
        # In-triangle test of every loop vertex against its face's (a,b,c).
        ax_e, ay_e = axf[fid], ayf[fid]
        bx_e, by_e = bxf[fid], byf[fid]
        cx_e, cy_e = cxf[fid], cyf[fid]
        d1 = (bx_e - ax_e) * (py - ay_e) - (by_e - ay_e) * (px - ax_e)
        d2 = (cx_e - bx_e) * (py - by_e) - (cy_e - by_e) * (px - bx_e)
        d3 = (ax_e - cx_e) * (py - cy_e) - (ay_e - cy_e) * (px - cx_e)
        has_neg = (d1 < 0) | (d2 < 0) | (d3 < 0)
        has_pos = (d1 > 0) | (d2 > 0) | (d3 > 0)
        in_tri = ~(has_neg & has_pos)
        lens_e = lens[fid]
        b_pos_e = b_pos[fid]
        excluded = (pos == b_pos_e) | (pos == (b_pos_e - 1) % lens_e) \
            | (pos == (b_pos_e + 1) % lens_e)
        cand = in_tri & ~excluded & (lens_e > 3)
        # Distance from the chord a-c, maximized per face (first max wins).
        num = np.abs((cx_e - ax_e) * (ay_e - py) - (ax_e - px) * (cy_e - ay_e))
        den_f = np.sqrt((cxf - axf) ** 2 + (cyf - ayf) ** 2)
        with np.errstate(divide="ignore", invalid="ignore"):
            ldist = np.where(den_f[fid] > 0, num / den_f[fid], 0.0)
        dm = np.where(cand, ldist, -1.0)
        best = np.maximum.reduceat(dm, offs)
        has_inside = best > -1.0
        flag = cand & (dm == best[fid])
        choose = np.where(flag, pos, total + 1)
        chosen_rel = np.minimum.reduceat(choose, offs)
        chosen_flat = offs + np.minimum(chosen_rel, lens - 1)
        # Three output families, mirroring the scalar case analysis.
        tri3 = lens == 3
        cent3_x = (px[offs] + px[offs + 1] + px[offs + 2]) / 3.0
        cent3_y = (py[offs] + py[offs + 1] + py[offs + 2]) / 3.0
        centc_x = (axf + bxf + cxf) / 3.0
        centc_y = (ayf + byf + cyf) / 3.0
        mid_x = (bxf + px[chosen_flat]) / 2.0
        mid_y = (byf + py[chosen_flat]) / 2.0
        out_x = np.where(tri3, cent3_x, np.where(has_inside, mid_x, centc_x))
        out_y = np.where(tri3, cent3_y, np.where(has_inside, mid_y, centc_y))
        return np.stack((out_x, out_y), axis=1)


def _interior_point(poly: List[Point]) -> Point:
    """An interior point of a simple CCW polygon (scalar reference)."""
    n = len(poly)
    if n == 3:
        return ((poly[0][0] + poly[1][0] + poly[2][0]) / 3.0,
                (poly[0][1] + poly[1][1] + poly[2][1]) / 3.0)
    # Find a strictly convex corner (the lowest-then-leftmost vertex is one).
    idx = min(range(n), key=lambda i: (poly[i][1], poly[i][0]))
    a = poly[(idx - 1) % n]
    b = poly[idx]
    c = poly[(idx + 1) % n]
    inside: Optional[Point] = None
    best = -1.0
    for i, q in enumerate(poly):
        if i in ((idx - 1) % n, idx, (idx + 1) % n):
            continue
        if _in_triangle(q, a, b, c):
            d = _line_dist(q, a, c)
            if d > best:
                best = d
                inside = q
    if inside is None:
        return ((a[0] + b[0] + c[0]) / 3.0, (a[1] + b[1] + c[1]) / 3.0)
    return ((b[0] + inside[0]) / 2.0, (b[1] + inside[1]) / 2.0)


def _in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool:
    def cross(o: Point, u: Point, v: Point) -> float:
        return (u[0] - o[0]) * (v[1] - o[1]) - (u[1] - o[1]) * (v[0] - o[0])

    d1 = cross(a, b, p)
    d2 = cross(b, c, p)
    d3 = cross(c, a, p)
    has_neg = d1 < 0 or d2 < 0 or d3 < 0
    has_pos = d1 > 0 or d2 > 0 or d3 > 0
    return not (has_neg and has_pos)


def _line_dist(p: Point, a: Point, b: Point) -> float:
    num = abs((b[0] - a[0]) * (a[1] - p[1]) - (a[0] - p[0]) * (b[1] - a[1]))
    # Shared sqrt form (not math.hypot) so the vectorized
    # face_interior_array stays bitwise-comparable to this reference.
    dx = b[0] - a[0]
    dy = b[1] - a[1]
    den = math.sqrt(dx * dx + dy * dy)
    return num / den if den > 0 else 0.0
