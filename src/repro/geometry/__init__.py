"""Geometric substrate: primitives, disks, hyperbolae, envelopes, areas,
arrangements — everything the paper's constructions are assembled from.

All modules operate on plain ``(x, y)`` float tuples and share the
tolerance model of :mod:`repro.geometry.primitives`.
"""

from .areas import circle_rect_area, disk_area, lens_area
from .circle_polygon import circle_polygon_area
from .circles import circumcenter, circle_through, smallest_enclosing_disk
from .convexhull import FarthestPointOracle, convex_hull, farthest_point_index
from .disks import (
    Disk,
    delta_value,
    nonzero_nn_bruteforce,
    nonzero_nn_indices,
    pairwise_disjoint,
    radius_ratio,
)
from .envelopes import Arc, PiecewisePolarCurve, lower_envelope
from .halfplanes import (
    Halfplane,
    clip_polygon,
    halfplane_intersection,
    polygon_area,
    polygon_contains,
)
from .hyperbola import (
    PolarHyperbola,
    gamma_branch,
    intersect_same_focus,
    witness_branch,
)
from .primitives import (
    EPS,
    Point,
    almost_equal,
    angle_of,
    bounding_box,
    centroid,
    cross,
    dedupe_points,
    dist,
    dist2,
    dot,
    midpoint,
    normalize_angle,
    orient,
    orient_sign,
    polar_point,
    rel_eps,
)
from .seg_arrangement import SegmentArrangement
from .squares import Square, linf_dist, nonzero_nn_bruteforce_linf
from .segments import (
    bisector_line,
    line_box_clip,
    point_on_segment,
    segment_intersection,
)

__all__ = [
    "EPS",
    "Point",
    "Disk",
    "Halfplane",
    "PolarHyperbola",
    "PiecewisePolarCurve",
    "Arc",
    "SegmentArrangement",
    "Square",
    "FarthestPointOracle",
    "almost_equal",
    "angle_of",
    "bisector_line",
    "bounding_box",
    "centroid",
    "circle_polygon_area",
    "circle_rect_area",
    "circle_through",
    "circumcenter",
    "clip_polygon",
    "convex_hull",
    "cross",
    "dedupe_points",
    "delta_value",
    "disk_area",
    "dist",
    "dist2",
    "dot",
    "farthest_point_index",
    "gamma_branch",
    "halfplane_intersection",
    "intersect_same_focus",
    "lens_area",
    "linf_dist",
    "line_box_clip",
    "lower_envelope",
    "midpoint",
    "nonzero_nn_bruteforce",
    "nonzero_nn_bruteforce_linf",
    "nonzero_nn_indices",
    "normalize_angle",
    "orient",
    "orient_sign",
    "pairwise_disjoint",
    "point_on_segment",
    "polar_point",
    "polygon_area",
    "polygon_contains",
    "radius_ratio",
    "rel_eps",
    "segment_intersection",
    "smallest_enclosing_disk",
    "witness_branch",
]
