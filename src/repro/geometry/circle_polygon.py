"""Exact area of a circle intersected with a convex polygon.

Needed for uniform-on-polygon uncertain points (Theorem 2.6 allows
semialgebraic uncertainty regions of constant description complexity;
convex polygons are the simplest useful family, and the remark after
Theorem 2.10 discusses convex alpha-fat regions): the distance cdf is

    G_q(r) = area(B(q, r) ∩ polygon) / area(polygon).

Algorithm: the classic edge-sweep decomposition.  With the circle
translated to the origin, the intersection area is the sum over directed
polygon edges of the signed area between the edge and the center, where
each edge is clipped to the circle — straight pieces inside contribute
triangle areas, pieces outside contribute circular sectors spanned by
their direction change.  Exact up to floating point; validated against
Monte-Carlo in the tests.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .primitives import Point

__all__ = ["circle_polygon_area"]


def circle_polygon_area(center: Point, r: float,
                        polygon: Sequence[Point]) -> float:
    """Area of ``disk(center, r)`` intersected with a CCW convex polygon.

    Also correct for simple non-convex CCW polygons (the edge-sweep is
    orientation-based), though the library only feeds convex ones.
    Returns 0 for polygons with fewer than 3 vertices.
    """
    if r < 0:
        raise ValueError("negative radius")
    if r == 0 or len(polygon) < 3:
        return 0.0
    total = 0.0
    cx, cy = center
    shifted: List[Point] = [(x - cx, y - cy) for x, y in polygon]
    for idx in range(len(shifted)):
        a = shifted[idx]
        b = shifted[(idx + 1) % len(shifted)]
        total += _edge_contribution(a, b, r)
    return max(0.0, total)


def _edge_contribution(a: Point, b: Point, r: float) -> float:
    """Signed area between edge ``ab`` and the origin, clipped to radius r."""
    dx = b[0] - a[0]
    dy = b[1] - a[1]
    qa = dx * dx + dy * dy
    if qa <= 1e-30:
        return 0.0
    qb = 2.0 * (a[0] * dx + a[1] * dy)
    qc = a[0] * a[0] + a[1] * a[1] - r * r
    disc = qb * qb - 4.0 * qa * qc
    if disc <= 0.0:
        # Line misses the circle: the whole edge is outside.
        return _sector(a, b, r)
    root = math.sqrt(disc)
    t_lo = (-qb - root) / (2.0 * qa)
    t_hi = (-qb + root) / (2.0 * qa)
    lo = max(t_lo, 0.0)
    hi = min(t_hi, 1.0)
    if lo >= hi:
        return _sector(a, b, r)
    p_lo = (a[0] + lo * dx, a[1] + lo * dy)
    p_hi = (a[0] + hi * dx, a[1] + hi * dy)
    area = 0.5 * (p_lo[0] * p_hi[1] - p_hi[0] * p_lo[1])
    if lo > 0.0:
        area += _sector(a, p_lo, r)
    if hi < 1.0:
        area += _sector(p_hi, b, r)
    return area


def _sector(p: Point, q: Point, r: float) -> float:
    """Signed circular-sector area spanned by directions ``p`` to ``q``."""
    cross = p[0] * q[1] - p[1] * q[0]
    dot = p[0] * q[0] + p[1] * q[1]
    theta = math.atan2(cross, dot)
    return 0.5 * r * r * theta