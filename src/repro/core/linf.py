"""NN!=0 queries for square regions under the L-infinity metric.

Implements Remark (ii) after Theorem 3.1: with square uncertainty regions
and Chebyshev distances, both stages of the two-stage query carry over —
squares are L-infinity balls, so ``Delta_i(q) = ||q - c_i||_inf + h_i`` and
``delta_i(q) = max(||q - c_i||_inf - h_i, 0)`` mirror the disk formulas,
and the same additively-weighted kd-tree searches answer them (now with
Chebyshev box bounds).

L1 (diamond regions) reduces to this case by rotating the plane 45 degrees:
``rotate45`` is provided for exactly that.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..geometry.primitives import Point
from ..geometry.squares import Square, nonzero_nn_bruteforce_linf
from ..spatial.kdtree import KDTree

__all__ = ["SquareNNIndex", "rotate45"]

_SQRT_HALF = math.sqrt(0.5)


def rotate45(p: Point) -> Point:
    """Rotate a point by 45 degrees (maps L1 diamonds to L-inf squares)."""
    return (_SQRT_HALF * (p[0] - p[1]), _SQRT_HALF * (p[0] + p[1]))


class SquareNNIndex:
    """Two-stage NN!=0 queries over squares in the L-infinity metric.

    Exact for square regions: the support bound *is* the region, so no
    refinement pass is needed (unlike the general ``PNNIndex`` path).
    """

    def __init__(self, squares: Sequence[Square]) -> None:
        if not squares:
            raise ValueError("need at least one square")
        self.squares: List[Square] = list(squares)
        self._tree = KDTree([s.center for s in self.squares],
                            [s.h for s in self.squares], metric="linf")

    @property
    def n(self) -> int:
        """Number of uncertain regions."""
        return len(self.squares)

    def delta(self, q: Point) -> float:
        """``Delta(q) = min_i (||q - c_i||_inf + h_i)``, exactly."""
        return self._tree.weighted_min(q)[1]

    def nonzero_nn(self, q: Point) -> List[int]:
        """``NN!=0(q)`` under L-infinity (Lemma 2.1, Chebyshev distances).

        Squares have positive extent (``h > 0``) in the intended regime, so
        the ``Delta``-argmin always qualifies; zero-extent squares are
        handled by the same second-minimum refinement as the L2 index.
        """
        if self.n == 1:
            return [0]
        (i1, v1), (_, v2) = self._tree.weighted_two_min(q)
        out = []
        for i in self._tree.weighted_report(q, v2 if math.isfinite(v2) else v1,
                                            strict=False):
            threshold = v2 if (i == i1 and self.squares[i].h == 0.0) else v1
            if self.squares[i].min_dist(q) < threshold:
                out.append(i)
        return sorted(out)

    def nonzero_nn_bruteforce(self, q: Point) -> List[int]:
        """Reference O(n) evaluation."""
        return nonzero_nn_bruteforce_linf(self.squares, q)