"""The [CKP04] branch-and-prune baseline for NN!=0 queries.

Section 1.2: "[CKP04] designed a branch-and-prune solution based on the
R-tree ... These methods do not provide any nontrivial performance
guarantees."  This module implements that baseline faithfully so the
reproduction can *compare* against it (benchmark E17... see
``bench_e17_baseline_comparison.py``):

1. each uncertain point's support is wrapped in its bounding rectangle and
   the rectangles are packed into an R-tree;
2. a query first derives the pruning bound
   ``B = min_i max_dist(rect_i, q)`` by a best-first descent;
3. a second traversal reports every rectangle with ``min_dist < B``;
4. surviving candidates are refined with the models' exact distances
   (rectangle bounds are looser than support-disk bounds, so the
   refinement is what restores exactness).

The answers are identical to :class:`repro.core.index.PNNIndex`; the
difference the benchmark exposes is the amount of work: rectangle bounds
are weaker than the paper's structures, exactly the gap the paper's
guarantees formalize.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..geometry.disks import nonzero_nn_indices
from ..geometry.primitives import Point
from ..spatial.rtree import Rect, RTree, rect_max_dist
from ..uncertain.base import UncertainPoint

__all__ = ["BranchAndPruneIndex"]


class BranchAndPruneIndex:
    """R-tree branch-and-prune NN!=0 queries ([CKP04]-style baseline)."""

    def __init__(self, points: Sequence[UncertainPoint]) -> None:
        if not points:
            raise ValueError("need at least one uncertain point")
        self.points: List[UncertainPoint] = list(points)
        self._rects: List[Rect] = [self._bounding_rect(p) for p in self.points]
        self._tree = RTree(self._rects)
        self.last_visited = 0  # nodes touched by the most recent query

    @staticmethod
    def _bounding_rect(point: UncertainPoint) -> Rect:
        disk = point.support_disk()
        return (disk.cx - disk.r, disk.cy - disk.r,
                disk.cx + disk.r, disk.cy + disk.r)

    # ------------------------------------------------------------------
    def nonzero_nn(self, q: Point) -> List[int]:
        """``NN!=0(q)`` by branch-and-prune with exact refinement.

        The R-tree bound ``B`` upper-bounds the true ``Delta(q)`` (a
        rectangle's farthest corner is at least the support's farthest
        point), so the candidate set is a superset; exact per-model
        distances then decide membership via the Lemma 2.1 predicate
        restricted to candidates.
        """
        bound = self._tree.min_max_dist_bound(q)
        candidates, visited = self._tree.candidates_within(
            q, bound, strict=False)
        self.last_visited = visited
        # Exact refinement on the candidate set.  The candidate set always
        # contains every index of the true answer *and* every Delta-argmin
        # (their rect min_dist <= Delta_i(q) <= B), so evaluating the
        # Lemma 2.1 predicate within it is exact.
        mins = {i: self.points[i].min_dist(q) for i in candidates}
        maxs = {i: self.points[i].max_dist(q) for i in candidates}
        ordered = sorted(candidates)
        picked = nonzero_nn_indices([mins[i] for i in ordered],
                                    [maxs[i] for i in ordered])
        out = [ordered[t] for t in picked]
        # Zero-extent edge case: the unique Delta-argmin may owe its
        # membership to the *subset* second-minimum, while the true
        # second-minimum attainer was pruned.  Re-verify exactly (rare:
        # only reachable when delta_i = Delta_i, i.e. certain points).
        if out:
            min1 = min(maxs[i] for i in candidates)
            argmins = [i for i in candidates if maxs[i] == min1]
            if len(argmins) == 1 and argmins[0] in out \
                    and mins[argmins[0]] >= min1:
                i_star = argmins[0]
                true_second = min(self.points[j].max_dist(q)
                                  for j in range(len(self.points))
                                  if j != i_star)
                if mins[i_star] >= true_second:
                    out.remove(i_star)
        return out

    def pruning_stats(self, q: Point) -> Tuple[int, int]:
        """``(candidates, nodes visited)`` for one query — benchmark fodder."""
        bound = self._tree.min_max_dist_bound(q)
        candidates, visited = self._tree.candidates_within(
            q, bound, strict=False)
        return len(candidates), visited