"""``PNNIndex`` — the library's front door for probabilistic NN queries.

Wraps a set of uncertain points (any mix of models) and exposes the
paper's two query primitives:

* :meth:`nonzero_nn` — all points with nonzero probability of being the
  nearest neighbor (Sections 2–3), answered by the two-stage query of
  Theorems 3.1/3.2: first ``Delta(q)``, then report
  ``{i : delta_i(q) < Delta(q)}``.  Both stages are *exact* for every
  model: the kd-tree over support disks provides candidate pruning, and
  each candidate is confirmed with the model's exact ``min_dist`` /
  ``max_dist``.
* :meth:`quantify` — the quantification probabilities ``pi_i(q)``
  (Section 4), exactly or to additive error ``eps`` via the Monte-Carlo or
  spiral-search estimators.

Every query primitive also has a *batch* front door — :meth:`batch_delta`,
:meth:`batch_nonzero_nn`, :meth:`batch_quantify`,
:meth:`batch_quantify_exact`, :meth:`batch_quantify_vpr`,
:meth:`batch_top_k`, :meth:`batch_threshold_nn` —
that accepts an ``(m, 2)`` array of queries and dispatches to the
NumPy-vectorized :class:`~repro.spatial.batch.BatchQueryEngine` (dense
matrix kernels for small ``n``, array-kd-tree bucketing for large ``n``)
or, for exact discrete quantification, to the vectorized Eq. (2) sweep of
:class:`~repro.quantification.batch_exact.BatchExactQuantifier`.
The batch paths preserve the exact Lemma 2.1 semantics of the scalar ones
(including the second-minimum threshold for a unique ``Delta`` argmin) and
are one to two orders of magnitude faster per query on thousand-query
workloads — benchmark E19 measures the speedup.

For service-shaped traffic (many clients, bursty scalar streams, very
large batches) :meth:`serve` wraps the index in a
:class:`~repro.serving.service.QueryService` adding request coalescing,
multi-core sharding, and result caching on top of the same primitives.

Heavier artifacts (the nonzero Voronoi diagram, the exact probabilistic
Voronoi diagram) are built on demand via :meth:`build_nonzero_voronoi` and
:meth:`build_vpr`.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.disks import Disk
from ..geometry.primitives import Point
from ..quantification.batch_exact import BatchExactQuantifier
from ..quantification.exact_continuous import quantification_continuous_vector
from ..quantification.exact_discrete import quantification_vector
from ..quantification.monte_carlo import MonteCarloQuantifier
from ..quantification.spiral import SpiralSearchQuantifier
from ..quantification.threshold import ThresholdResult, classify_threshold
from ..spatial.batch import BatchQueryEngine, as_query_array
from ..spatial.kdtree import KDTree
from ..spatial.kernels import KERNELS
from ..uncertain.base import UncertainPoint
from ..uncertain.discrete import DiscreteUncertainPoint
from ..voronoi.diagram import NonzeroVoronoiDiagram
from ..voronoi.vpr import ProbabilisticVoronoiDiagram

__all__ = ["PNNIndex"]


class PNNIndex:
    """Probabilistic nearest-neighbor index over uncertain points.

    Parameters
    ----------
    points:
        The uncertain points (at least one; models may be mixed).
    kernel:
        Compute-kernel provider for the batch engines: ``"auto"``
        (default), ``"native"``, or ``"numpy"`` — see
        :mod:`repro.spatial.kernels`.  All providers return
        bitwise-identical answers; the choice is operational (``"auto"``
        prefers the compiled native kernels when the host can build
        them, honoring the ``REPRO_KERNEL`` environment steer).

    Examples
    --------
    >>> from repro import PNNIndex, DiskUniformPoint
    >>> index = PNNIndex([DiskUniformPoint((0, 0), 1), DiskUniformPoint((4, 0), 1)])
    >>> index.nonzero_nn((1.0, 0.0))
    [0]
    >>> sorted(index.nonzero_nn((2.0, 0.0)))
    [0, 1]
    """

    def __init__(self, points: Sequence[UncertainPoint],
                 kernel: str = "auto") -> None:
        if not points:
            raise ValueError("PNNIndex needs at least one uncertain point")
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; "
                             f"expected one of {KERNELS}")
        self.kernel = kernel
        #: Point-locator kind for lazily built V_Pr diagrams
        #: (``"auto"`` | ``"slab"`` | ``"persistent"``; see
        #: :data:`repro.voronoi.vpr.LOCATORS`).  ``ServiceConfig.locator``
        #: sets this on the served index.
        self.vpr_locator = "auto"
        #: When ``True``, :meth:`cached_vpr` refuses to build a diagram
        #: lazily and raises instead.  Shared-plane executor workers set
        #: this before attaching the parent's plane, making a silent
        #: Theta(N^4) per-worker rebuild structurally impossible.
        self.vpr_build_forbidden = False
        self.points: List[UncertainPoint] = list(points)
        self._supports: List[Disk] = [p.support_disk() for p in self.points]
        self._support_tree = KDTree(
            [d.center for d in self._supports],
            [d.r for d in self._supports])
        self._mc_cache: Dict[tuple, MonteCarloQuantifier] = {}
        self._spiral: Optional[SpiralSearchQuantifier] = None
        self._batch: Optional[BatchQueryEngine] = None
        self._batch_exact: Optional[BatchExactQuantifier] = None
        self._vpr: Optional[ProbabilisticVoronoiDiagram] = None
        # V_Pr is the one lazy artifact expensive enough that a benign
        # double-build (two threads racing first use) is worth a lock.
        self._vpr_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of uncertain points."""
        return len(self.points)

    def all_discrete(self) -> bool:
        """Whether every point has a discrete distribution."""
        return all(isinstance(p, DiscreteUncertainPoint) for p in self.points)

    def set_kernel(self, kernel: str) -> None:
        """Switch the kernel provider for subsequently built batch engines.

        Validates *kernel* (and fails fast on an explicit ``"native"``
        request the host cannot serve) and drops the cached batch engine
        and exact quantifier so the next batch call rebuilds them on the
        new provider.  A cached ``V_Pr`` is deliberately kept: rebuilding
        the ``Theta(N^4)`` diagram would be expensive and pointless —
        providers are bitwise-identical, so the stored face vectors are
        exactly what either provider would compute.
        """
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; "
                             f"expected one of {KERNELS}")
        from ..spatial.kernels import get_provider

        get_provider(kernel)  # explicit "native" must fail loudly here
        self.kernel = kernel
        self._batch = None
        self._batch_exact = None

    # ------------------------------------------------------------------
    # Stage 1: Delta(q).
    # ------------------------------------------------------------------
    def delta(self, q: Point) -> float:
        """``Delta(q) = min_i Delta_i(q)``, exactly.

        The support-disk kd-tree gives the upper bound
        ``min_i (d(q, c_i) + r_i)`` in one weighted-NN query; each
        candidate whose lower bound ``d(q, c_i) - r_i`` beats it is
        re-evaluated with the model's exact ``max_dist`` (for disk supports
        the bound is already exact).
        """
        return self._delta_info(q)[0]

    def _delta_info(self, q: Point) -> tuple:
        """Exact ``(min Delta, second-min Delta, unique argmin or None)``.

        The second minimum and argmin uniqueness feed the exact Lemma 2.1
        semantics: for the unique minimizer of ``Delta`` the comparison
        threshold ranges over ``j != i`` and is the second minimum —
        which matters for zero-extent (certain) supports where
        ``delta_i = Delta_i``.
        """
        (_, v1_ub), (_, v2_ub) = self._support_tree.weighted_two_min(q)
        bound = v2_ub if math.isfinite(v2_ub) else v1_ub
        candidates = self._support_tree.weighted_report(q, bound, strict=False)
        exact = sorted((self.points[i].max_dist(q), i) for i in candidates)
        min1 = exact[0][0]
        attainers = [i for v, i in exact if v == min1]
        unique = attainers[0] if len(attainers) == 1 else None
        second = exact[1][0] if len(exact) > 1 else math.inf
        return min1, second, unique

    # ------------------------------------------------------------------
    # Stage 2: the nonzero NN report.
    # ------------------------------------------------------------------
    def nonzero_nn(self, q: Point) -> List[int]:
        """``NN!=0(q)``: indices with nonzero probability of being the NN.

        Exact two-stage query (Lemma 2.1 + Theorems 3.1/3.2): compute
        ``Delta(q)`` (and its second minimum, for the ``j != i``
        semantics), then report every point whose exact minimum distance
        beats its threshold.  The kd-tree prunes with the support-disk
        lower bound ``d(q, c_i) - r_i <= min_dist_i(q)``, so the candidate
        set is a superset of the answer and each candidate is confirmed
        exactly.
        """
        if self.n == 1:
            return [0]
        min1, second, unique = self._delta_info(q)
        report_bound = second if unique is not None else min1
        if math.isfinite(report_bound):
            candidates = self._support_tree.weighted_report(
                q, report_bound, strict=False)
        else:
            candidates = range(self.n)
        out = []
        for i in candidates:
            threshold = second if i == unique else min1
            if self.points[i].min_dist(q) < threshold:
                out.append(i)
        return sorted(out)

    def nonzero_nn_bruteforce(self, q: Point) -> List[int]:
        """Reference O(n) implementation of the Lemma 2.1 predicate."""
        from ..geometry.disks import nonzero_nn_indices

        return nonzero_nn_indices([p.min_dist(q) for p in self.points],
                                  [p.max_dist(q) for p in self.points])

    def _mc_quantifier(self, epsilon: float, delta: float,
                       seed: int) -> MonteCarloQuantifier:
        """The cached Monte-Carlo structure shared by scalar and batch paths."""
        key = ("mc", epsilon, delta, seed)
        if key not in self._mc_cache:
            self._mc_cache[key] = MonteCarloQuantifier(
                self.points, epsilon=epsilon, delta=delta, seed=seed)
        return self._mc_cache[key]

    # ------------------------------------------------------------------
    # Batch queries: vectorized over an (m, 2) array of query points.
    # ------------------------------------------------------------------
    def batch_engine(self, backend: str = "auto") -> BatchQueryEngine:
        """The lazily-built vectorized backend (shared by all batch calls).

        ``backend`` other than ``"auto"`` forces a fresh engine with the
        requested strategy (``"dense"`` or ``"bucket"``) — useful for
        tests and benchmarks; the auto engine stays cached.
        """
        if backend != "auto":
            return BatchQueryEngine(self.points, backend=backend,
                                    kernel=self.kernel)
        if self._batch is None:
            self._batch = BatchQueryEngine(self.points, kernel=self.kernel)
        return self._batch

    def batch_delta(self, queries) -> np.ndarray:
        """``Delta(q)`` for every row of *queries*, as a float array.

        Vectorized equivalent of calling :meth:`delta` per row.
        """
        return self.batch_engine().delta(queries)

    def batch_nonzero_nn(self, queries) -> List[List[int]]:
        """``NN!=0(q)`` for every row of *queries* (each list sorted).

        Vectorized equivalent of calling :meth:`nonzero_nn` per row: the
        same two-stage query with exact per-candidate confirmation, but
        answered for the whole batch in a few NumPy passes.
        """
        return self.batch_engine().nonzero_nn(queries)

    def batch_quantify(self, queries, method: str = "auto",
                       epsilon: float = 0.05, delta: float = 0.05,
                       seed: int = 0) -> List[Dict[int, float]]:
        """:meth:`quantify` for every row of *queries*.

        The Monte-Carlo method is answered by one vectorized counting pass
        over the shared ``(s, n, 2)`` instantiation tensor (identical
        estimates to the scalar path, which uses the same structure); the
        exact and spiral methods fall back to a per-query loop.
        """
        q = as_query_array(queries)
        if method == "auto":
            method = "spiral" if self.all_discrete() else "monte_carlo"
        if method == "monte_carlo":
            return self._mc_quantifier(epsilon, delta, seed).estimate_batch(q)
        if method == "exact" and self.all_discrete():
            return self.batch_quantify_exact(q)
        return [self.quantify((float(x), float(y)), method=method,
                              epsilon=epsilon, delta=delta, seed=seed)
                for x, y in q]

    def batch_quantify_exact(self, queries,
                             tie_tol: float = 0.0) -> List[Dict[int, float]]:
        """Exact Eq. (2) quantification for every row of *queries*.

        The vectorized sweep of
        :class:`~repro.quantification.batch_exact.BatchExactQuantifier`:
        bitwise-identical dicts to ``quantify(q, method="exact")`` per row
        (the documented tie-group convention on degenerate inputs), an
        order of magnitude faster on thousand-query workloads — benchmark
        E21 measures the speedup.  Discrete distributions only.
        """
        if not self.all_discrete():
            raise ValueError(
                "batch_quantify_exact requires discrete distributions; "
                "use batch_quantify(method='monte_carlo') for mixed models")
        if tie_tol != 0.0:
            return BatchExactQuantifier(
                self.points, tie_tol=tie_tol,  # type: ignore[arg-type]
                kernel=self.kernel).batch(queries)
        if self._batch_exact is None:
            self._batch_exact = BatchExactQuantifier(
                self.points, kernel=self.kernel)  # type: ignore[arg-type]
        return self._batch_exact.batch(queries)

    def batch_top_k(self, queries, k: int, method: str = "auto",
                    epsilon: float = 0.05, delta: float = 0.05,
                    seed: int = 0) -> List[List[tuple]]:
        """:meth:`top_k_nn` for every row of *queries*."""
        if k <= 0:
            return [[] for _ in range(len(as_query_array(queries)))]
        batches = self.batch_quantify(queries, method=method, epsilon=epsilon,
                                      delta=delta, seed=seed)
        return [sorted(est.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
                for est in batches]

    def batch_threshold_nn(self, queries, tau: float,
                           epsilon: Optional[float] = None,
                           method: str = "auto", delta: float = 0.05,
                           seed: int = 0) -> List[ThresholdResult]:
        """:meth:`threshold_nn` for every row of *queries*.

        One vectorized quantification pass feeds the per-row ±epsilon
        classification, so the results (including the default
        ``epsilon = tau / 4`` margin) match the scalar calls exactly.
        """
        if epsilon is None:
            epsilon = tau / 4.0
        estimates = self.batch_quantify(queries, method=method,
                                        epsilon=epsilon, delta=delta,
                                        seed=seed)
        return [classify_threshold(est, tau, epsilon) for est in estimates]

    def cached_vpr(self) -> ProbabilisticVoronoiDiagram:
        """The lazily-built, shared ``V_Pr`` over the default window.

        Built once (vectorized pipeline, default box) on first use and
        reused by every subsequent :meth:`quantify_vpr` /
        :meth:`batch_quantify_vpr` call; thread-safe so the serving
        layer's thread backend shares one diagram instead of racing
        duplicate builds.  :meth:`use_vpr` installs a prebuilt diagram
        (e.g. with a custom window) instead.
        """
        if self._vpr is None:
            with self._vpr_lock:
                if self._vpr is None:
                    if self.vpr_build_forbidden:
                        raise RuntimeError(
                            "V_Pr build forbidden on this index (shared-"
                            "plane worker replica): the parent's plane "
                            "was not installed, refusing a per-worker "
                            "diagram rebuild")
                    self._vpr = self.build_vpr()
        return self._vpr

    def use_vpr(self, vpr: ProbabilisticVoronoiDiagram) -> None:
        """Adopt *vpr* as the diagram behind the ``quantify_vpr`` kind.

        The diagram must be over this index's points (same objects or an
        equal-length, equal-order set — answers are only meaningful when
        the point sets agree).
        """
        if len(vpr.points) != self.n:
            raise ValueError(
                f"prebuilt V_Pr covers {len(vpr.points)} points, "
                f"index has {self.n}")
        with self._vpr_lock:
            self._vpr = vpr

    def quantify_vpr(self, q: Point) -> Dict[int, float]:
        """Exact ``{i: pi_i(q)}`` via ``V_Pr`` point location.

        The Theorem 4.2 query path: locate the cell of *q* and return its
        precomputed probability vector (``O(log N + t)``), falling back
        to the direct Eq. (2) sweep outside the diagram's window — exact
        everywhere.  Discrete distributions only.
        """
        return self.batch_quantify_vpr([q])[0]

    def batch_quantify_vpr(self, queries) -> List[Dict[int, float]]:
        """:meth:`quantify_vpr` for every row of *queries*.

        One vectorized point-location pass
        (:meth:`~repro.spatial.pointlocation.SlabPointLocator.
        locate_batch`) gathers precomputed face vectors; out-of-window
        rows are answered by the batched Eq. (2) sweep.  Rows use the
        same sparse-dict container as :meth:`batch_quantify_exact` and
        agree with it row for row (bitwise on generic queries — inside a
        cell the sweep's comparisons replay identically at the cell's
        representative).
        """
        return self.cached_vpr().quantify_batch(queries)

    # ------------------------------------------------------------------
    # The flat-array codec (shared-memory serving, compact persistence).
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Encode the point set into flat NumPy arrays.

        The :mod:`repro.spatial.codec` wire format the shared-memory
        executor backend maps into worker processes; decoding
        (:meth:`from_arrays`) is bitwise-faithful, so a decoded replica
        answers every query with identical bits.  Raises
        :class:`~repro.spatial.codec.CodecUnsupported` when the set
        contains a model outside the built-in classes.
        """
        from ..spatial.codec import points_to_arrays

        return points_to_arrays(self.points)

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "PNNIndex":
        """Rebuild an index from :meth:`to_arrays` output (bitwise)."""
        from ..spatial.codec import points_from_arrays

        return cls(points_from_arrays(arrays))

    def serve(self, config: Optional["ServiceConfig"] = None,
              vpr: Optional[ProbabilisticVoronoiDiagram] = None,
              **overrides) -> "QueryService":
        """A :class:`~repro.serving.service.QueryService` over this index.

        Keyword overrides populate a fresh
        :class:`~repro.serving.service.ServiceConfig` — e.g.
        ``index.serve(workers=4, backend="thread", cache_capacity=8192)``.
        The service layers request coalescing, multi-core sharding over a
        pluggable executor backend, and exact-keyed result caching over
        the batch engine; close it (or use it as a context manager) to
        stop its worker pool and flusher thread.  A prebuilt *vpr* is
        adopted (:meth:`use_vpr`) for the ``quantify_vpr`` query kind;
        otherwise the first such query builds the diagram lazily.
        """
        from ..serving.service import QueryService, ServiceConfig

        if config is not None and overrides:
            raise TypeError("pass either a ServiceConfig or overrides, "
                            "not both")
        cfg = config if config is not None else ServiceConfig(**overrides)
        return QueryService(self, cfg, vpr=vpr)

    # ------------------------------------------------------------------
    # Quantification probabilities.
    # ------------------------------------------------------------------
    def quantify(self, q: Point, method: str = "auto",
                 epsilon: float = 0.05, delta: float = 0.05,
                 seed: int = 0) -> Dict[int, float]:
        """Quantification probabilities ``{i: pi_i(q)}`` (zeros omitted).

        ``method``:

        * ``"exact"`` — Eq. (2) sweep for discrete inputs, Eq. (1)
          quadrature for continuous ones (slow, reference quality);
        * ``"monte_carlo"`` — Theorem 4.3/4.5 estimator, ±epsilon with
          probability 1 - delta; works for every model;
        * ``"spiral"`` — Theorem 4.7 estimator (discrete only),
          one-sided: ``pi_hat <= pi <= pi_hat + eps``;
        * ``"auto"`` — ``"spiral"`` when all-discrete, else
          ``"monte_carlo"``.
        """
        if method == "auto":
            method = "spiral" if self.all_discrete() else "monte_carlo"
        if method == "exact":
            if self.all_discrete():
                vec = quantification_vector(self.points, q)  # type: ignore[arg-type]
            else:
                vec = quantification_continuous_vector(self.points, q)
            return {i: v for i, v in enumerate(vec) if v > 0.0}
        if method == "monte_carlo":
            return self._mc_quantifier(epsilon, delta, seed).estimate(q)
        if method == "spiral":
            if not self.all_discrete():
                raise ValueError("spiral search requires discrete distributions")
            if self._spiral is None:
                self._spiral = SpiralSearchQuantifier(self.points)  # type: ignore[arg-type]
            return self._spiral.estimate(q, epsilon)
        raise ValueError(f"unknown method {method!r}")

    def top_k_nn(self, q: Point, k: int, method: str = "auto",
                 epsilon: float = 0.05, delta: float = 0.05,
                 seed: int = 0) -> List[tuple]:
        """The ``k`` most probable nearest neighbors, as ``(index, pi)`` pairs.

        The probabilistic k-NN variant the paper's Section 1.2 surveys
        ([BSI08]-style "top-k probable NNs", ranked by quantification
        probability).  With a ±epsilon estimator the returned order is
        correct for any pair separated by more than ``2 * epsilon``; ties
        within the noise band are broken by index for determinism.
        """
        if k <= 0:
            return []
        estimates = self.quantify(q, method=method, epsilon=epsilon,
                                  delta=delta, seed=seed)
        ranked = sorted(estimates.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def threshold_nn(self, q: Point, tau: float,
                     epsilon: Optional[float] = None,
                     method: str = "auto", delta: float = 0.05,
                     seed: int = 0) -> ThresholdResult:
        """Points with ``pi_i(q) > tau``, with a ±epsilon decision margin.

        Defaults to ``epsilon = tau / 4`` (well inside the ``eps < tau``
        requirement), so at most ``1/(tau - eps)`` candidates survive.
        """
        if epsilon is None:
            epsilon = tau / 4.0
        estimates = self.quantify(q, method=method, epsilon=epsilon,
                                  delta=delta, seed=seed)
        return classify_threshold(estimates, tau, epsilon)

    # ------------------------------------------------------------------
    # The expected-distance alternative ([AESZ12], discussed in §1.2).
    # ------------------------------------------------------------------
    def expected_distance_ranking(self, q: Point, samples: int = 2048,
                                  seed: int = 0) -> List[int]:
        """Indices ranked by expected distance ``E[d(q, P_i)]``, closest first.

        The companion paper [AESZ12] defines the NN of *q* as the point
        minimizing expected distance.  The paper reproduced here argues
        (citing [YTX+10]) that this ranking can disagree with the
        quantification-probability ranking under large uncertainty — the
        sensor-dispatch example demonstrates exactly that.  Expectations
        are Monte-Carlo estimates with a shared seeded budget, except for
        discrete distributions where they are computed exactly.
        """
        def expected(p: UncertainPoint) -> float:
            if isinstance(p, DiscreteUncertainPoint):
                return sum(w * math.dist(site, q)
                           for site, w in p.sites_with_weights())
            return p.mean_dist(q, samples=samples, seed=seed)

        return sorted(range(self.n), key=lambda i: expected(self.points[i]))

    # ------------------------------------------------------------------
    # Heavy artifacts.
    # ------------------------------------------------------------------
    def build_nonzero_voronoi(self, tol: float = 1e-7) -> NonzeroVoronoiDiagram:
        """Construct ``V!=0`` over the support disks (Theorem 2.5).

        Exact for disk-supported models; for site-based models the support
        disk is the smallest enclosing disk, a conservative region (the
        paper's discrete machinery, :class:`~repro.voronoi.discrete_diagram.
        DiscreteNonzeroVoronoi`, handles those exactly).
        """
        return NonzeroVoronoiDiagram(self._supports, tol=tol)

    def build_vpr(self, box=None, build_mode: str = "vector",
                  locator: Optional[str] = None
                  ) -> ProbabilisticVoronoiDiagram:
        """Construct the exact probabilistic Voronoi diagram (Theorem 4.2).

        ``build_mode="vector"`` (default) routes the whole construction —
        bisector generation, arrangement build, and face labeling — through
        the batched NumPy pipeline, reusing this index's cached
        :class:`~repro.quantification.batch_exact.BatchExactQuantifier`
        for the ``O(N^4)`` face vectors; ``"scalar"`` forces the
        pure-Python reference build.  Both produce bitwise-identical
        diagrams (benchmark E22 measures the speedup).

        ``locator`` picks the point-location structure (``"auto"`` |
        ``"slab"`` | ``"persistent"``; locators answer bitwise
        identically) and defaults to this index's :attr:`vpr_locator`.
        """
        if not self.all_discrete():
            raise ValueError("V_Pr requires discrete distributions")
        quantifier = None
        if build_mode == "vector":
            if self._batch_exact is None:
                self._batch_exact = BatchExactQuantifier(
                    self.points, kernel=self.kernel)  # type: ignore[arg-type]
            quantifier = self._batch_exact
        return ProbabilisticVoronoiDiagram(
            self.points, box=box, build_mode=build_mode,  # type: ignore[arg-type]
            quantifier=quantifier,
            locator=self.vpr_locator if locator is None else locator)
