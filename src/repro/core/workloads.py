"""Synthetic workload generators.

The paper motivates uncertain NN search with sensor databases,
location-based services and moving-object tracking (Section 1); it has no
public datasets, so these generators produce the corresponding synthetic
regimes (see the substitution table in DESIGN.md).  Every generator is
seeded and deterministic.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from ..geometry.disks import Disk
from ..uncertain.discrete import DiscreteUncertainPoint
from ..uncertain.disk_uniform import DiskUniformPoint
from ..uncertain.gaussian import TruncatedGaussianPoint
from ..uncertain.histogram import HistogramUncertainPoint

__all__ = [
    "random_disks",
    "disjoint_disks",
    "random_discrete_points",
    "clustered_sensor_field",
    "mobile_object_tracks",
    "rfid_histogram_field",
    "gaussian_sensor_field",
]


def random_disks(n: int, seed: int = 0, extent: float = 10.0,
                 r_min: float = 0.2, r_max: float = 0.8) -> List[Disk]:
    """Uniformly placed disks with radii in ``[r_min, r_max]``.

    The default workload for the ``V!=0`` complexity experiments (E3):
    centers uniform in ``[0, extent]^2``, overlapping allowed.
    """
    rng = random.Random(seed)
    return [Disk(rng.uniform(0, extent), rng.uniform(0, extent),
                 rng.uniform(r_min, r_max)) for _ in range(n)]


def disjoint_disks(n: int, ratio: float = 2.0, seed: int = 0) -> List[Disk]:
    """Pairwise-disjoint disks with radius ratio exactly *ratio*.

    The Theorem 2.10 regime: disks are placed on a jittered grid with cell
    size chosen so neighbors cannot touch; radii are spread
    log-uniformly over ``[1, ratio]`` with the extremes pinned so the
    realized ``lambda`` equals *ratio*.
    """
    if ratio < 1:
        raise ValueError("radius ratio must be >= 1")
    rng = random.Random(seed)
    side = math.ceil(math.sqrt(n))
    cell = 4.5 * ratio  # > 2 * max radius: grid neighbors stay disjoint
    radii = [1.0, ratio] if n >= 2 else [1.0]
    while len(radii) < n:
        radii.append(math.exp(rng.uniform(0.0, math.log(ratio)))
                     if ratio > 1 else 1.0)
    rng.shuffle(radii)
    disks: List[Disk] = []
    for idx in range(n):
        gx = idx % side
        gy = idx // side
        jitter = cell / 2.0 - radii[idx] - 0.1
        cx = gx * cell + cell / 2.0 + rng.uniform(-jitter, jitter)
        cy = gy * cell + cell / 2.0 + rng.uniform(-jitter, jitter)
        disks.append(Disk(cx, cy, radii[idx]))
    return disks


def random_discrete_points(n: int, k: int = 3, seed: int = 0,
                           extent: float = 10.0, spread: float = 1.0,
                           weight_ratio: float = 2.0
                           ) -> List[DiscreteUncertainPoint]:
    """Discrete uncertain points: ``k`` sites in a small cluster each.

    ``weight_ratio`` bounds the per-site weight spread (the global
    ``rho`` of Eq. 9 is then at most ``weight_ratio^2`` before
    normalization effects; the spiral-search benchmark sweeps it).
    """
    rng = random.Random(seed)
    out: List[DiscreteUncertainPoint] = []
    for _ in range(n):
        cx = rng.uniform(0, extent)
        cy = rng.uniform(0, extent)
        sites = [(cx + rng.uniform(-spread, spread),
                  cy + rng.uniform(-spread, spread)) for _ in range(k)]
        weights = [rng.uniform(1.0, weight_ratio) for _ in range(k)]
        out.append(DiscreteUncertainPoint(sites, weights))
    return out


def clustered_sensor_field(n: int, clusters: int = 4, seed: int = 0,
                           extent: float = 100.0,
                           uncertainty: float = 2.0
                           ) -> List[DiskUniformPoint]:
    """Sensor-database regime: readings clustered around base stations.

    Each sensor's location is uniform over a disk of radius
    ``uncertainty`` (imprecise localization), and sensors bunch around
    ``clusters`` hotspots — the spatial skew typical of deployments the
    paper's introduction cites.
    """
    rng = random.Random(seed)
    hubs = [(rng.uniform(0.2, 0.8) * extent, rng.uniform(0.2, 0.8) * extent)
            for _ in range(clusters)]
    out: List[DiskUniformPoint] = []
    for _ in range(n):
        hx, hy = hubs[rng.randrange(clusters)]
        cx = hx + rng.gauss(0, extent / 20.0)
        cy = hy + rng.gauss(0, extent / 20.0)
        out.append(DiskUniformPoint((cx, cy),
                                    uncertainty * rng.uniform(0.5, 1.5)))
    return out


def mobile_object_tracks(n: int, pings: int = 4, seed: int = 0,
                         extent: float = 50.0, speed: float = 1.5
                         ) -> List[DiscreteUncertainPoint]:
    """Moving-object regime ([CKP04]): stale location pings with recency decay.

    Each object reports ``pings`` past positions along a random walk; the
    most recent ping is the most probable current location (geometric decay
    with factor 2), giving a naturally bounded weight spread.
    """
    rng = random.Random(seed)
    out: List[DiscreteUncertainPoint] = []
    for _ in range(n):
        x = rng.uniform(0, extent)
        y = rng.uniform(0, extent)
        track = []
        for _ in range(pings):
            track.append((x, y))
            heading = rng.uniform(0, 2 * math.pi)
            step = speed * rng.uniform(0.5, 1.5)
            x += step * math.cos(heading)
            y += step * math.sin(heading)
        weights = [2.0 ** t for t in range(pings)]  # newest ping heaviest
        out.append(DiscreteUncertainPoint(track, weights))
    return out


def rfid_histogram_field(n: int, grid: int = 3, seed: int = 0,
                         extent: float = 30.0, cell: float = 1.0
                         ) -> List[HistogramUncertainPoint]:
    """RFID/indoor-positioning regime: per-tag occupancy histograms.

    Each tag's location pdf is piecewise constant on a ``grid x grid``
    patch of cells with random (sparse) occupancy counts.
    """
    rng = random.Random(seed)
    out: List[HistogramUncertainPoint] = []
    for _ in range(n):
        ox = rng.uniform(0, extent)
        oy = rng.uniform(0, extent)
        weights = [[rng.choice([0, 1, 1, 2, 3]) for _ in range(grid)]
                   for _ in range(grid)]
        if not any(any(row) for row in weights):
            weights[grid // 2][grid // 2] = 1
        out.append(HistogramUncertainPoint((ox, oy), cell, cell, weights))
    return out


def gaussian_sensor_field(n: int, seed: int = 0, extent: float = 40.0,
                          sigma: float = 1.0,
                          support_factor: float = 3.0
                          ) -> List[TruncatedGaussianPoint]:
    """GPS-noise regime: truncated-Gaussian position estimates."""
    rng = random.Random(seed)
    return [TruncatedGaussianPoint(
        (rng.uniform(0, extent), rng.uniform(0, extent)),
        sigma * rng.uniform(0.5, 1.5),
        support_factor * sigma) for _ in range(n)]
