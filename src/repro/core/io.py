"""JSON serialization of uncertain-point workloads.

Lets users persist generated workloads and reload them elsewhere — the
usual round-trip a database-adjacent library needs for experiment
repeatability.  Every model in :mod:`repro.uncertain` is covered; the
format is a versioned JSON document with one record per uncertain point.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Sequence, Union

from ..uncertain.annulus import AnnulusUniformPoint
from ..uncertain.base import UncertainPoint
from ..uncertain.discrete import DiscreteUncertainPoint
from ..uncertain.disk_uniform import DiskUniformPoint
from ..uncertain.gaussian import TruncatedGaussianPoint
from ..uncertain.histogram import HistogramUncertainPoint
from ..uncertain.polygon import ConvexPolygonUniformPoint

__all__ = ["point_to_dict", "point_from_dict", "save_workload",
           "load_workload", "dumps_workload", "loads_workload"]

_FORMAT_VERSION = 1


def point_to_dict(point: UncertainPoint) -> Dict:
    """Serialize one uncertain point to a plain dict."""
    if isinstance(point, DiskUniformPoint):
        return {"model": "disk_uniform", "center": list(point.center),
                "radius": point.radius}
    if isinstance(point, TruncatedGaussianPoint):
        return {"model": "truncated_gaussian", "center": list(point.center),
                "sigma": point.sigma, "support_radius": point.support_radius}
    if isinstance(point, DiscreteUncertainPoint):
        return {"model": "discrete",
                "sites": [list(s) for s in point.points],
                "weights": list(point.weights)}
    if isinstance(point, HistogramUncertainPoint):
        # Reconstruct the sparse cell list (the dense grid is not stored).
        return {"model": "histogram", "origin": list(point.origin),
                "cell_width": point.cell_width,
                "cell_height": point.cell_height,
                "cells": [[i, j, w] for (i, j), w in
                          zip(point._cells, point._weights)]}
    if isinstance(point, ConvexPolygonUniformPoint):
        return {"model": "convex_polygon",
                "vertices": [list(v) for v in point.vertices]}
    if isinstance(point, AnnulusUniformPoint):
        return {"model": "annulus", "center": list(point.center),
                "r_inner": point.r_inner, "r_outer": point.r_outer}
    raise TypeError(f"cannot serialize model {type(point).__name__}")


def point_from_dict(data: Dict) -> UncertainPoint:
    """Reconstruct an uncertain point from :func:`point_to_dict` output."""
    model = data.get("model")
    if model == "disk_uniform":
        return DiskUniformPoint(tuple(data["center"]), data["radius"])
    if model == "truncated_gaussian":
        return TruncatedGaussianPoint(tuple(data["center"]), data["sigma"],
                                      data["support_radius"])
    if model == "discrete":
        return DiscreteUncertainPoint([tuple(s) for s in data["sites"]],
                                      data["weights"], normalize=False)
    if model == "histogram":
        max_i = max(c[0] for c in data["cells"])
        max_j = max(c[1] for c in data["cells"])
        grid = [[0.0] * (max_j + 1) for _ in range(max_i + 1)]
        for i, j, w in data["cells"]:
            grid[i][j] = w
        return HistogramUncertainPoint(tuple(data["origin"]),
                                       data["cell_width"],
                                       data["cell_height"], grid)
    if model == "convex_polygon":
        return ConvexPolygonUniformPoint([tuple(v) for v in data["vertices"]])
    if model == "annulus":
        return AnnulusUniformPoint(tuple(data["center"]), data["r_inner"],
                                   data["r_outer"])
    raise ValueError(f"unknown model {model!r}")


def dumps_workload(points: Sequence[UncertainPoint]) -> str:
    """Serialize a workload to a JSON string."""
    doc = {"format": "repro-workload", "version": _FORMAT_VERSION,
           "points": [point_to_dict(p) for p in points]}
    return json.dumps(doc)


def loads_workload(text: str) -> List[UncertainPoint]:
    """Load a workload from a JSON string."""
    doc = json.loads(text)
    if doc.get("format") != "repro-workload":
        raise ValueError("not a repro workload document")
    if doc.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported workload version {doc.get('version')}")
    return [point_from_dict(d) for d in doc["points"]]


def save_workload(points: Sequence[UncertainPoint],
                  target: Union[str, IO[str]]) -> None:
    """Write a workload to a path or file object."""
    text = dumps_workload(points)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)


def load_workload(source: Union[str, IO[str]]) -> List[UncertainPoint]:
    """Read a workload from a path or file object."""
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            return loads_workload(handle.read())
    return loads_workload(source.read())