"""Core facade (``PNNIndex``) and synthetic workload generators."""

from .index import PNNIndex
from .baseline import BranchAndPruneIndex
from .io import load_workload, save_workload
from .linf import SquareNNIndex, rotate45
from .workloads import (
    clustered_sensor_field,
    disjoint_disks,
    gaussian_sensor_field,
    mobile_object_tracks,
    random_discrete_points,
    random_disks,
    rfid_histogram_field,
)

__all__ = [
    "BranchAndPruneIndex",
    "PNNIndex",
    "SquareNNIndex",
    "rotate45",
    "load_workload",
    "save_workload",
    "clustered_sensor_field",
    "disjoint_disks",
    "gaussian_sensor_field",
    "mobile_object_tracks",
    "random_discrete_points",
    "random_disks",
    "rfid_histogram_field",
]
