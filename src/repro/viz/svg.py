"""Dependency-free SVG rendering of diagrams, disks and curves.

Used by the gallery example to draw uncertainty regions, ``gamma`` curves
and ``V!=0`` vertices.  Deliberately tiny: a scene collects shapes in data
coordinates and :meth:`SvgScene.write` maps them into a fixed-size viewBox.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..geometry.primitives import Point

__all__ = ["SvgScene"]


class SvgScene:
    """Accumulates shapes and serializes them to an SVG file."""

    def __init__(self, width: int = 800, height: int = 800,
                 padding: float = 0.05) -> None:
        self.width = width
        self.height = height
        self.padding = padding
        self._shapes: List[str] = []
        self._points: List[Point] = []  # for the bounding box

    # ------------------------------------------------------------------
    def add_circle(self, center: Point, radius: float,
                   stroke: str = "#336", fill: str = "none",
                   stroke_width: float = 1.5, opacity: float = 1.0) -> None:
        """Add a circle in data coordinates."""
        self._points.extend([(center[0] - radius, center[1] - radius),
                             (center[0] + radius, center[1] + radius)])
        self._shapes.append(("circle", center, radius, stroke, fill,
                             stroke_width, opacity))  # type: ignore[arg-type]

    def add_polyline(self, points: Sequence[Point], stroke: str = "#c33",
                     stroke_width: float = 1.0, closed: bool = False) -> None:
        """Add a polyline (or closed polygon outline)."""
        pts = list(points)
        if not pts:
            return
        self._points.extend(pts)
        self._shapes.append(("polyline", pts, stroke, stroke_width, closed))  # type: ignore[arg-type]

    def add_dot(self, p: Point, radius: float = 3.0,
                fill: str = "#000") -> None:
        """Add a fixed-pixel-size dot marking a data point."""
        self._points.append(p)
        self._shapes.append(("dot", p, radius, fill))  # type: ignore[arg-type]

    def add_label(self, p: Point, text: str, size: int = 12,
                  fill: str = "#222") -> None:
        """Add a text label anchored at a data point."""
        self._points.append(p)
        self._shapes.append(("label", p, text, size, fill))  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def _transform(self) -> Tuple[float, float, float]:
        if not self._points:
            return 1.0, 0.0, 0.0
        xs = [p[0] for p in self._points]
        ys = [p[1] for p in self._points]
        x0, x1 = min(xs), max(xs)
        y0, y1 = min(ys), max(ys)
        span = max(x1 - x0, y1 - y0, 1e-9)
        usable = 1.0 - 2.0 * self.padding
        scale = usable * min(self.width, self.height) / span
        ox = self.padding * self.width - x0 * scale
        oy = self.padding * self.height + y1 * scale  # flip y
        return scale, ox, oy

    def write(self, path: str) -> None:
        """Serialize the scene to *path* as a standalone SVG file."""
        scale, ox, oy = self._transform()

        def tx(p: Point) -> Tuple[float, float]:
            return (p[0] * scale + ox, -p[1] * scale + oy)

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" fill="#fff"/>',
        ]
        for shape in self._shapes:
            kind = shape[0]
            if kind == "circle":
                _, center, radius, stroke, fill, sw, opacity = shape
                cx, cy = tx(center)
                parts.append(
                    f'<circle cx="{cx:.2f}" cy="{cy:.2f}" '
                    f'r="{radius * scale:.2f}" stroke="{stroke}" '
                    f'fill="{fill}" stroke-width="{sw}" '
                    f'opacity="{opacity}"/>')
            elif kind == "polyline":
                _, pts, stroke, sw, closed = shape
                coords = " ".join(f"{x:.2f},{y:.2f}"
                                  for x, y in (tx(p) for p in pts))
                tag = "polygon" if closed else "polyline"
                parts.append(
                    f'<{tag} points="{coords}" stroke="{stroke}" '
                    f'fill="none" stroke-width="{sw}"/>')
            elif kind == "dot":
                _, p, radius, fill = shape
                cx, cy = tx(p)
                parts.append(
                    f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{radius}" '
                    f'fill="{fill}"/>')
            elif kind == "label":
                _, p, text, size, fill = shape
                cx, cy = tx(p)
                parts.append(
                    f'<text x="{cx:.2f}" y="{cy:.2f}" font-size="{size}" '
                    f'fill="{fill}" font-family="sans-serif">{text}</text>')
        parts.append("</svg>")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(parts))
