"""Dependency-free visualization helpers (SVG output)."""

from .svg import SvgScene

__all__ = ["SvgScene"]
