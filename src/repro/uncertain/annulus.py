"""Uniform distribution on an annulus (ring) — range-only sensing.

A realistic bounded-support model the paper's framework covers: a
range-only measurement ("the target is between r_inner and r_outer from
the beacon") induces a uniform distribution over an annulus.  The distance
cdf is exact via two lens areas; the extreme distances account for the
hole (a query inside the hole is ``r_inner`` away from the support).
"""

from __future__ import annotations

import math
import random

from ..geometry.areas import lens_area
from ..geometry.disks import Disk
from ..geometry.primitives import Point, dist
from .base import UncertainPoint

__all__ = ["AnnulusUniformPoint"]


class AnnulusUniformPoint(UncertainPoint):
    """Uniformly distributed location on ``{x : r_in <= |x - c| <= r_out}``."""

    def __init__(self, center: Point, r_inner: float, r_outer: float) -> None:
        if not 0 <= r_inner < r_outer:
            raise ValueError("need 0 <= r_inner < r_outer")
        self.center = (float(center[0]), float(center[1]))
        self.r_inner = float(r_inner)
        self.r_outer = float(r_outer)
        self.area = math.pi * (r_outer ** 2 - r_inner ** 2)

    # ------------------------------------------------------------------
    def support_disk(self) -> Disk:
        return Disk(self.center[0], self.center[1], self.r_outer)

    def min_dist(self, q: Point) -> float:
        d = dist(q, self.center)
        if d < self.r_inner:
            return self.r_inner - d  # the hole keeps the support away
        if d > self.r_outer:
            return d - self.r_outer
        return 0.0

    def max_dist(self, q: Point) -> float:
        return dist(q, self.center) + self.r_outer

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> Point:
        # Area-uniform radius on [r_in, r_out]: inverse cdf of r^2.
        u = rng.random()
        r = math.sqrt(self.r_inner ** 2
                      + u * (self.r_outer ** 2 - self.r_inner ** 2))
        t = 2.0 * math.pi * rng.random()
        return (self.center[0] + r * math.cos(t),
                self.center[1] + r * math.sin(t))

    def distance_cdf(self, q: Point, r: float) -> float:
        """Exact: (outer lens - inner lens) / annulus area."""
        if r <= 0:
            return 0.0
        outer = lens_area(q, r, self.center, self.r_outer)
        inner = lens_area(q, r, self.center, self.r_inner) \
            if self.r_inner > 0 else 0.0
        return min(1.0, max(0.0, (outer - inner) / self.area))