"""Uniform distribution on a disk — the paper's running example (Figure 1).

For ``P`` uniform on disk ``D = D(c, R)`` and a query ``q`` at distance
``d = |qc|``:

* the distance cdf is an area ratio,
  ``G_q(r) = area(B(q, r) ∩ D) / (pi R^2)`` — a circle–circle lens;
* the distance pdf is the *arc length* of the circle ``∂B(q, r)`` inside
  ``D`` divided by the disk area:
  ``g_q(r) = 2 r alpha(r) / (pi R^2)`` where ``2 alpha`` is the subtended
  angle, ``cos(alpha) = (d^2 + r^2 - R^2) / (2 d r)``.

Figure 1 of the paper plots exactly this ``g_q`` for ``R = 5``,
``c = (0, 0)``, ``q = (6, 8)`` (so ``d = 10``, support ``[5, 15]``);
benchmark E1 regenerates the curve and cross-checks it against a sampled
histogram.
"""

from __future__ import annotations

import math
import random

from ..geometry.areas import lens_area
from ..geometry.disks import Disk
from ..geometry.primitives import Point, dist
from .base import UncertainPoint

__all__ = ["DiskUniformPoint"]


class DiskUniformPoint(UncertainPoint):
    """Uniformly distributed location on a closed disk of positive radius."""

    def __init__(self, center: Point, radius: float) -> None:
        if radius <= 0:
            raise ValueError("uniform disk needs positive radius")
        self.center = (float(center[0]), float(center[1]))
        self.radius = float(radius)

    # ------------------------------------------------------------------
    def support_disk(self) -> Disk:
        return Disk(self.center[0], self.center[1], self.radius)

    def min_dist(self, q: Point) -> float:
        return max(dist(q, self.center) - self.radius, 0.0)

    def max_dist(self, q: Point) -> float:
        return dist(q, self.center) + self.radius

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> Point:
        # sqrt-radius trick for area-uniform sampling.
        t = 2.0 * math.pi * rng.random()
        r = self.radius * math.sqrt(rng.random())
        return (self.center[0] + r * math.cos(t),
                self.center[1] + r * math.sin(t))

    def distance_cdf(self, q: Point, r: float) -> float:
        if r <= 0:
            return 0.0
        area = lens_area(q, r, self.center, self.radius)
        return area / (math.pi * self.radius * self.radius)

    def distance_pdf(self, q: Point, r: float, dr: float = 1e-5) -> float:
        """Closed-form density: boundary-arc length over disk area."""
        if r <= 0:
            return 0.0
        d = dist(q, self.center)
        R = self.radius
        if d <= 1e-12:
            # Query at the disk center: the circle of radius r is entirely
            # inside (r < R) or entirely outside (r > R).
            if r >= R:
                return 0.0
            return 2.0 * r / (R * R)
        if r <= d - R or r >= d + R:
            return 0.0
        if r <= R - d:
            # Circle around q entirely inside D.
            return 2.0 * r / (R * R)
        cos_alpha = (d * d + r * r - R * R) / (2.0 * d * r)
        alpha = math.acos(min(1.0, max(-1.0, cos_alpha)))
        return 2.0 * r * alpha / (math.pi * R * R)
