"""Histogram (piecewise-constant) uncertain points.

Section 1.1 allows non-parametric pdfs "such as a histogram".  We model a
histogram as a mixture of uniform distributions on the cells of a regular
grid: cell ``(i, j)`` spans
``[x0 + j*cw, x0 + (j+1)*cw] x [y0 + i*ch, y0 + (i+1)*ch]`` and carries
probability ``weights[i][j]``.

The distance cdf is exact: each cell contributes its weight times the
fraction of its area inside the query ball — a circle–rectangle
intersection (:func:`repro.geometry.areas.circle_rect_area`).
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence, Tuple

from ..geometry.areas import circle_rect_area
from ..geometry.circles import smallest_enclosing_disk
from ..geometry.disks import Disk
from ..geometry.primitives import Point
from .base import UncertainPoint

__all__ = ["HistogramUncertainPoint"]


class HistogramUncertainPoint(UncertainPoint):
    """A piecewise-constant pdf over a regular grid of rectangular cells."""

    def __init__(self, origin: Point, cell_width: float, cell_height: float,
                 weights: Sequence[Sequence[float]]) -> None:
        if cell_width <= 0 or cell_height <= 0:
            raise ValueError("cell dimensions must be positive")
        rows = len(weights)
        if rows == 0 or len(weights[0]) == 0:
            raise ValueError("weights grid must be non-empty")
        cols = len(weights[0])
        if any(len(row) != cols for row in weights):
            raise ValueError("weights grid must be rectangular")
        self.origin = (float(origin[0]), float(origin[1]))
        self.cell_width = float(cell_width)
        self.cell_height = float(cell_height)

        self._cells: List[Tuple[int, int]] = []
        self._weights: List[float] = []
        for i in range(rows):
            for j in range(cols):
                w = float(weights[i][j])
                if w < 0:
                    raise ValueError("cell weights must be non-negative")
                if w > 0:
                    self._cells.append((i, j))
                    self._weights.append(w)
        if not self._cells:
            raise ValueError("histogram needs at least one positive cell")
        self._finish_weights(normalize=True)

    @classmethod
    def from_cells(cls, origin: Point, cell_width: float, cell_height: float,
                   cells: Sequence[Tuple[int, int]],
                   weights: Sequence[float],
                   normalize: bool = True) -> "HistogramUncertainPoint":
        """Build from an explicit positive-cell list.

        The decoding counterpart of the flat-array codec (and any future
        persistence path): ``normalize=False`` keeps already-normalized
        *weights* bitwise (re-dividing by their ≈1.0 sum would perturb
        them).  Derived state is assembled by the same
        :meth:`_finish_weights` the grid constructor uses, so the two
        paths cannot drift apart.
        """
        if cell_width <= 0 or cell_height <= 0:
            raise ValueError("cell dimensions must be positive")
        if not cells or len(cells) != len(weights):
            raise ValueError("need equal-length, non-empty cells/weights")
        if any(w <= 0 for w in weights):
            raise ValueError("cell weights must be positive")
        p = cls.__new__(cls)
        p.origin = (float(origin[0]), float(origin[1]))
        p.cell_width = float(cell_width)
        p.cell_height = float(cell_height)
        p._cells = [(int(i), int(j)) for i, j in cells]
        p._weights = [float(w) for w in weights]
        p._finish_weights(normalize=normalize)
        return p

    def _finish_weights(self, normalize: bool) -> None:
        """Normalize (optionally) and derive the cumulative table."""
        if normalize:
            total = sum(self._weights)
            self._weights = [w / total for w in self._weights]
        self._cumulative: List[float] = []
        acc = 0.0
        for w in self._weights:
            acc += w
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0

    # ------------------------------------------------------------------
    def _cell_rect(self, cell: Tuple[int, int]) -> Tuple[Point, Point]:
        i, j = cell
        x0 = self.origin[0] + j * self.cell_width
        y0 = self.origin[1] + i * self.cell_height
        return ((x0, y0), (x0 + self.cell_width, y0 + self.cell_height))

    def _corners(self) -> List[Point]:
        out: List[Point] = []
        for cell in self._cells:
            (x0, y0), (x1, y1) = self._cell_rect(cell)
            out.extend(((x0, y0), (x1, y0), (x1, y1), (x0, y1)))
        return out

    def cell_rects(self) -> List[Tuple[Point, Point]]:
        """``((x0, y0), (x1, y1))`` rectangles of the positive cells.

        The exact geometry behind :meth:`min_dist` — the batch engine's
        vectorized histogram kernel consumes exactly this list.
        """
        return [self._cell_rect(cell) for cell in self._cells]

    def corners(self) -> List[Point]:
        """Corner points of every positive cell (4 per cell, in order).

        The candidate set :meth:`max_dist` maximizes over; also feeds the
        batch engine's vectorized kernel.
        """
        return self._corners()

    # ------------------------------------------------------------------
    def support_disk(self) -> Disk:
        """Smallest disk enclosing every positive-weight cell."""
        return smallest_enclosing_disk(self._corners())

    def min_dist(self, q: Point) -> float:
        # sqrt(dx*dx + dy*dy) rather than math.hypot: the library's shared
        # distance form (see geometry.primitives.dist), which the batch
        # kernels reproduce in NumPy for bitwise scalar/batch agreement.
        best = math.inf
        for cell in self._cells:
            (x0, y0), (x1, y1) = self._cell_rect(cell)
            dx = max(x0 - q[0], 0.0, q[0] - x1)
            dy = max(y0 - q[1], 0.0, q[1] - y1)
            best = min(best, math.sqrt(dx * dx + dy * dy))
        return best

    def max_dist(self, q: Point) -> float:
        best = 0.0
        for c in self._corners():
            dx = c[0] - q[0]
            dy = c[1] - q[1]
            best = max(best, math.sqrt(dx * dx + dy * dy))
        return best

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> Point:
        u = rng.random()
        idx = bisect.bisect_left(self._cumulative, u)
        if idx >= len(self._cells):
            idx = len(self._cells) - 1
        (x0, y0), (x1, y1) = self._cell_rect(self._cells[idx])
        return (x0 + rng.random() * (x1 - x0), y0 + rng.random() * (y1 - y0))

    def distance_cdf(self, q: Point, r: float) -> float:
        """Exact cdf: weighted covered-area fractions over the cells."""
        if r <= 0:
            return 0.0
        cell_area = self.cell_width * self.cell_height
        total = 0.0
        for cell, w in zip(self._cells, self._weights):
            rect = self._cell_rect(cell)
            total += w * circle_rect_area(q, r, rect) / cell_area
        return min(1.0, total)
