"""Discrete uncertain points: finitely many sites with location probabilities.

This is the paper's "discrete distribution of description complexity k"
(Section 1.1): ``P = {p_1, ..., p_k}`` with weights ``w_j = Pr[P is p_j]``,
``sum w_j = 1``.  The quantification probability then becomes the finite
sum of Eq. (2), the distance cdf a weighted counting query, and the spread
``rho = max w / min w`` (Eq. 9) governs the spiral-search bound
``m(rho, eps)`` of Theorem 4.7.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence, Tuple

from ..geometry.circles import smallest_enclosing_disk
from ..geometry.convexhull import FarthestPointOracle
from ..geometry.disks import Disk
from ..geometry.primitives import Point, dist
from .base import UncertainPoint

__all__ = ["DiscreteUncertainPoint"]


class DiscreteUncertainPoint(UncertainPoint):
    """A distribution over finitely many candidate locations.

    Parameters
    ----------
    points:
        The candidate locations ``p_1, ..., p_k`` (distinct).
    weights:
        Location probabilities.  Must be positive; normalized to sum to 1
        when *normalize* is true (the default), otherwise validated to sum
        to 1 within tolerance.
    """

    def __init__(self, points: Sequence[Point], weights: Sequence[float],
                 normalize: bool = True) -> None:
        if not points:
            raise ValueError("discrete uncertain point needs at least one site")
        if len(points) != len(weights):
            raise ValueError("points and weights must have equal length")
        if any(w <= 0 for w in weights):
            raise ValueError("location probabilities must be positive")
        total = float(sum(weights))
        if normalize:
            weights = [w / total for w in weights]
        elif abs(total - 1.0) > 1e-9:
            raise ValueError(f"weights sum to {total}, expected 1")
        self.points: List[Point] = [(float(x), float(y)) for x, y in points]
        self.weights: List[float] = [float(w) for w in weights]
        self._cumulative: List[float] = []
        acc = 0.0
        for w in self.weights:
            acc += w
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0
        self._farthest = FarthestPointOracle(self.points)

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Description complexity: the number of candidate sites."""
        return len(self.points)

    @property
    def spread(self) -> float:
        """``max w / min w`` for this point (contributes to the global rho)."""
        return max(self.weights) / min(self.weights)

    def support_disk(self) -> Disk:
        """Smallest enclosing disk of the sites."""
        return smallest_enclosing_disk(self.points)

    def min_dist(self, q: Point) -> float:
        return min(dist(q, p) for p in self.points)

    def max_dist(self, q: Point) -> float:
        return self._farthest.max_dist(q)

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> Point:
        """Instantiate by inverse-cdf lookup: O(log k) per draw.

        This is the paper's preprocessing for the Monte-Carlo structure
        ("each r_ji can be selected in O(log k) time", Section 4.2).
        """
        u = rng.random()
        idx = bisect.bisect_left(self._cumulative, u)
        if idx >= len(self.points):
            idx = len(self.points) - 1
        return self.points[idx]

    def distance_cdf(self, q: Point, r: float) -> float:
        """``G_q(r) = sum of w_j over sites within distance r`` (closed <=)."""
        return math.fsum(w for p, w in zip(self.points, self.weights)
                         if dist(q, p) <= r)

    def sites_with_weights(self) -> List[Tuple[Point, float]]:
        """The ``(location, probability)`` pairs, in input order."""
        return list(zip(self.points, self.weights))

    def hull_sites(self) -> List[Point]:
        """The convex-hull vertices that ``max_dist`` scans.

        The farthest site from any query lies on the hull, so these
        vertices alone determine ``Delta_i`` — the batch engine's
        vectorized kernels consume exactly this list.
        """
        return list(self._farthest.hull)
