"""Truncated (disk-supported) Gaussian uncertain points.

The paper requires bounded uncertainty regions and explicitly works with
*truncated* Gaussians, citing [BSI08, CCMC08] (Section 1.1).  We truncate an
isotropic Gaussian ``N(c, sigma^2 I)`` to the disk ``D(c, R)``.

The distance cdf has no closed form when the query ball pokes out of the
support, so ``distance_cdf`` integrates the density in polar coordinates
around the query with fixed-order Gauss–Legendre quadrature (the inner
angular integrand is a von-Mises kernel restricted to an arc).  Sampling is
exact by rejection — acceptance probability ``1 - exp(-R^2 / 2 sigma^2)``,
which is > 0.86 already for ``R = 2 sigma``.
"""

from __future__ import annotations

import math
import random

import numpy as np

from ..geometry.disks import Disk
from ..geometry.primitives import Point, dist
from .base import UncertainPoint

__all__ = ["TruncatedGaussianPoint"]

# Gauss–Legendre nodes/weights, computed once per order and cached.
_GL_CACHE = {}


def _gl(order: int):
    if order not in _GL_CACHE:
        _GL_CACHE[order] = np.polynomial.legendre.leggauss(order)
    return _GL_CACHE[order]


class TruncatedGaussianPoint(UncertainPoint):
    """Isotropic Gaussian truncated to a concentric disk support."""

    def __init__(self, center: Point, sigma: float, support_radius: float,
                 quadrature_order: int = 48) -> None:
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if support_radius <= 0:
            raise ValueError("support radius must be positive")
        self.center = (float(center[0]), float(center[1]))
        self.sigma = float(sigma)
        self.support_radius = float(support_radius)
        self._order = quadrature_order
        # Normalizing constant: mass of the untruncated Gaussian inside D.
        self._mass = 1.0 - math.exp(-support_radius ** 2 / (2.0 * sigma * sigma))

    # ------------------------------------------------------------------
    def support_disk(self) -> Disk:
        return Disk(self.center[0], self.center[1], self.support_radius)

    def min_dist(self, q: Point) -> float:
        return max(dist(q, self.center) - self.support_radius, 0.0)

    def max_dist(self, q: Point) -> float:
        return dist(q, self.center) + self.support_radius

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> Point:
        while True:
            x = rng.gauss(self.center[0], self.sigma)
            y = rng.gauss(self.center[1], self.sigma)
            dx = x - self.center[0]
            dy = y - self.center[1]
            if dx * dx + dy * dy <= self.support_radius ** 2:
                return (x, y)

    def distance_cdf(self, q: Point, r: float) -> float:
        """``Pr[d(q, P) <= r]`` by polar quadrature around *q*.

        Writes the mass of ``B(q, r) ∩ D(c, R)`` as an integral over the
        radial coordinate ``t in [t_lo, t_hi]`` of the admissible angular
        width times the radial Gaussian factor; both factors are smooth on
        the (at most two) radial pieces, which fixed-order Gauss–Legendre
        integrates to near machine precision.
        """
        if r <= 0:
            return 0.0
        d = dist(q, self.center)
        R = self.support_radius
        if r >= d + R:
            return 1.0
        if r <= d - R:
            return 0.0
        sig2 = 2.0 * self.sigma * self.sigma
        t_lo = max(d - R, 0.0)
        t_hi = min(r, d + R)
        if t_hi <= t_lo:
            return 0.0
        nodes, weights = _gl(self._order)
        # Map [-1, 1] -> [t_lo, t_hi].
        mid = 0.5 * (t_lo + t_hi)
        half = 0.5 * (t_hi - t_lo)
        t = mid + half * nodes
        # Admissible angular half-width at radius t (circle around q vs D).
        if d <= 1e-12:
            alpha = np.where(t <= R, math.pi, 0.0)
            radial = t * np.exp(-(t * t) / sig2)
            integrand = 2.0 * alpha * radial
        else:
            cosb = (d * d + t * t - R * R) / (2.0 * d * t)
            alpha = np.arccos(np.clip(cosb, -1.0, 1.0))
            # Angular integral of exp(t*d*cos(psi)/sigma^2) over |psi| <= alpha
            # around the direction from q to c, with the constant part of the
            # exponent factored out:
            #   density(x) = exp(-(t^2 + d^2 - 2 t d cos psi)/(2 sigma^2)) / (2 pi sigma^2)
            kappa = t * d / (self.sigma * self.sigma)
            ang = np.array([_arc_exp_integral(k, a)
                            for k, a in zip(kappa, alpha)])
            integrand = t * np.exp(-(t * t + d * d) / sig2) * ang
        total = float(np.sum(weights * integrand)) * half
        return min(1.0, max(0.0, total / (2.0 * math.pi * self.sigma ** 2 * self._mass)))


def _arc_exp_integral(kappa: float, alpha: float, order: int = 32) -> float:
    """``Integral of exp(kappa * cos(psi)) over |psi| <= alpha``."""
    if alpha <= 0:
        return 0.0
    nodes, weights = _gl(order)
    psi = 0.5 * alpha * (nodes + 1.0)  # map to [0, alpha]
    vals = np.exp(kappa * np.cos(psi))
    return float(np.sum(weights * vals)) * alpha  # x2 symmetry * (alpha/2)
