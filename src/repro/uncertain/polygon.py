"""Uniform distribution over a convex polygon.

Theorem 2.6 extends the ``O(n^3)`` bound on ``V!=0`` to uncertainty
regions that are semialgebraic sets of constant description complexity —
"a polygon with constant number of edges" is the paper's first example.
The remark after Theorem 2.10 additionally covers convex *alpha-fat*
regions (contained between concentric disks with radius ratio alpha),
noting that "in practice, a fat convex set can be approximated by a
circular disk".

This model supplies exactly that regime: exact extreme distances (so the
NN!=0 machinery stays exact), an exact distance cdf via the circle–polygon
area, an alpha-fatness estimate, and the disk approximation the remark
suggests.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

from ..geometry.circle_polygon import circle_polygon_area
from ..geometry.circles import smallest_enclosing_disk
from ..geometry.disks import Disk
from ..geometry.halfplanes import polygon_area, polygon_contains
from ..geometry.primitives import Point, dist, orient
from .base import UncertainPoint

__all__ = ["ConvexPolygonUniformPoint"]


class ConvexPolygonUniformPoint(UncertainPoint):
    """Uniformly distributed location over a convex polygon (CCW vertices)."""

    def __init__(self, vertices: Sequence[Point]) -> None:
        if len(vertices) < 3:
            raise ValueError("polygon needs at least 3 vertices")
        self.vertices: List[Point] = [(float(x), float(y))
                                      for x, y in vertices]
        area = polygon_area(self.vertices)
        if area <= 0:
            raise ValueError("vertices must be in CCW order with positive area")
        n = len(self.vertices)
        for i in range(n):
            if orient(self.vertices[i], self.vertices[(i + 1) % n],
                      self.vertices[(i + 2) % n]) < 0:
                raise ValueError("polygon must be convex")
        self.area = area
        # Fan triangulation for sampling: triangle t = (v0, v_t+1, v_t+2).
        self._tri_cum: List[float] = []
        acc = 0.0
        v0 = self.vertices[0]
        for t in range(n - 2):
            a = self.vertices[t + 1]
            b = self.vertices[t + 2]
            acc += abs((a[0] - v0[0]) * (b[1] - v0[1])
                       - (b[0] - v0[0]) * (a[1] - v0[1])) / 2.0
            self._tri_cum.append(acc)

    # ------------------------------------------------------------------
    def edges(self) -> List[Tuple[Point, Point]]:
        """The boundary segments ``(v_i, v_{i+1})``, in CCW order.

        The exact geometry behind :meth:`min_dist` (containment test plus
        segment distances) — the batch engine's vectorized polygon kernel
        consumes exactly this list.
        """
        n = len(self.vertices)
        return [(self.vertices[i], self.vertices[(i + 1) % n])
                for i in range(n)]

    def support_disk(self) -> Disk:
        return smallest_enclosing_disk(self.vertices)

    def min_dist(self, q: Point) -> float:
        if polygon_contains(self.vertices, q):
            return 0.0
        best = math.inf
        n = len(self.vertices)
        for i in range(n):
            best = min(best, _segment_dist(q, self.vertices[i],
                                           self.vertices[(i + 1) % n]))
        return best

    def max_dist(self, q: Point) -> float:
        return max(dist(v, q) for v in self.vertices)

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> Point:
        u = rng.random() * self._tri_cum[-1]
        t = 0
        while self._tri_cum[t] < u:
            t += 1
        a = self.vertices[0]
        b = self.vertices[t + 1]
        c = self.vertices[t + 2]
        r1 = rng.random()
        r2 = rng.random()
        if r1 + r2 > 1.0:  # reflect into the triangle
            r1, r2 = 1.0 - r1, 1.0 - r2
        return (a[0] + r1 * (b[0] - a[0]) + r2 * (c[0] - a[0]),
                a[1] + r1 * (b[1] - a[1]) + r2 * (c[1] - a[1]))

    def distance_cdf(self, q: Point, r: float) -> float:
        if r <= 0:
            return 0.0
        return min(1.0, circle_polygon_area(q, r, self.vertices) / self.area)

    # ------------------------------------------------------------------
    # The alpha-fatness machinery of the Theorem 2.10 remark.
    # ------------------------------------------------------------------
    def fatness(self) -> float:
        """An upper bound on the region's alpha-fatness.

        Uses the centroid as the common center: ``alpha <= r_out / r_in``
        with ``r_out`` the farthest vertex and ``r_in`` the nearest edge.
        (The optimal concentric pair can only be better, so this is a
        valid alpha.)
        """
        cx = sum(v[0] for v in self.vertices) / len(self.vertices)
        cy = sum(v[1] for v in self.vertices) / len(self.vertices)
        center = (cx, cy)
        r_out = max(dist(v, center) for v in self.vertices)
        n = len(self.vertices)
        r_in = min(_segment_dist(center, self.vertices[i],
                                 self.vertices[(i + 1) % n])
                   for i in range(n))
        if r_in <= 0:
            return math.inf
        return r_out / r_in

    def disk_approximation(self) -> Disk:
        """The disk stand-in the Theorem 2.10 remark suggests.

        The smallest enclosing disk: conservative for ``NN!=0`` pruning
        (its extreme distances bound the polygon's).
        """
        return self.support_disk()


def _segment_dist(q: Point, a: Point, b: Point) -> float:
    """Distance from *q* to segment ``ab``."""
    abx = b[0] - a[0]
    aby = b[1] - a[1]
    denom = abx * abx + aby * aby
    if denom <= 1e-30:
        return dist(q, a)
    t = ((q[0] - a[0]) * abx + (q[1] - a[1]) * aby) / denom
    t = min(1.0, max(0.0, t))
    return dist(q, (a[0] + t * abx, a[1] + t * aby))