"""The uncertain-point abstraction (the paper's locational model).

An uncertain point ``P`` is a probability distribution over locations in
the plane (Section 1.1).  Everything the paper's algorithms consume is
captured by this interface:

* ``min_dist(q)`` / ``max_dist(q)`` — the paper's ``delta(q)`` / ``Delta(q)``,
  the extreme distances from a query to the *support* of the distribution.
  These alone determine the nonzero-NN structures (Lemma 2.1: ``NN!=0``
  depends only on the uncertainty regions, not on the pdfs).
* ``distance_cdf(q, r)`` — ``G_{q,i}(r) = Pr[d(q, P) <= r]``, the distance
  cdf that enters the quantification-probability formulas (Eq. 1 / Eq. 2).
* ``distance_pdf(q, r)`` — the density ``g_{q,i}(r)`` (Figure 1 shows one).
* ``sample(rng)`` — a random instantiation, the primitive of the
  Monte-Carlo estimator (Section 4.2).

Concrete models: uniform-on-disk, truncated Gaussian, discrete, histogram.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from ..geometry.disks import Disk
from ..geometry.primitives import Point

__all__ = ["UncertainPoint"]


class UncertainPoint(abc.ABC):
    """A point whose location is a probability distribution in the plane."""

    # ------------------------------------------------------------------
    # Support geometry.
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def support_disk(self) -> Disk:
        """A disk containing the support of the distribution.

        For disk-shaped supports this is exact; for other shapes it is the
        smallest enclosing disk.  The continuous-case structures of
        Sections 2.1 and 3 operate on these disks.
        """

    @abc.abstractmethod
    def min_dist(self, q: Point) -> float:
        """``delta(q)``: infimum distance from *q* to the support."""

    @abc.abstractmethod
    def max_dist(self, q: Point) -> float:
        """``Delta(q)``: supremum distance from *q* to the support."""

    # ------------------------------------------------------------------
    # Distribution.
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def sample(self, rng: random.Random) -> Point:
        """Draw one location according to the distribution."""

    @abc.abstractmethod
    def distance_cdf(self, q: Point, r: float) -> float:
        """``G_q(r) = Pr[d(q, P) <= r]``."""

    def distance_pdf(self, q: Point, r: float, dr: float = 1e-5) -> float:
        """``g_q(r)``, by default a central difference of the cdf.

        Models with closed-form densities (uniform disk) override this.
        """
        lo = max(r - dr, 0.0)
        hi = r + dr
        return (self.distance_cdf(q, hi) - self.distance_cdf(q, lo)) / (hi - lo)

    # ------------------------------------------------------------------
    # Conveniences shared by models.
    # ------------------------------------------------------------------
    def mean_dist(self, q: Point, samples: int = 2048,
                  seed: Optional[int] = 0) -> float:
        """Monte-Carlo estimate of the expected distance ``E[d(q, P)]``.

        Not used by the paper's main algorithms (expected-distance NN is
        the subject of the companion paper [AESZ12]) but handy for the
        examples that contrast the two NN notions.
        """
        rng = random.Random(seed)
        total = 0.0
        for _ in range(samples):
            p = self.sample(rng)
            total += ((p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2) ** 0.5
        return total / samples
