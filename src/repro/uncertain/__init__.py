"""Uncertain-point models: the locational-uncertainty distributions of
Section 1.1 (uniform disk, truncated Gaussian, discrete, histogram)."""

from .annulus import AnnulusUniformPoint
from .base import UncertainPoint
from .discrete import DiscreteUncertainPoint
from .disk_uniform import DiskUniformPoint
from .gaussian import TruncatedGaussianPoint
from .histogram import HistogramUncertainPoint
from .polygon import ConvexPolygonUniformPoint

__all__ = [
    "UncertainPoint",
    "AnnulusUniformPoint",
    "ConvexPolygonUniformPoint",
    "DiskUniformPoint",
    "TruncatedGaussianPoint",
    "DiscreteUncertainPoint",
    "HistogramUncertainPoint",
]
